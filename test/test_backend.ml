(* Tests for packing, architecture, placement, routing, power and the
   bitstream — the back half of the flow. *)

open Netlist

let mapped_of vhdl =
  let net = Synth.Diviner.synthesize vhdl in
  fst (Techmap.Mapper.map_network ~k:4 ~verify:false net)

let counter_mapped = lazy (mapped_of (Core.Bench_circuits.counter 8))
let alu_mapped = lazy (mapped_of (Core.Bench_circuits.alu 8))

(* ---------- T-VPack ---------- *)

let test_ble_formation_fuses () =
  let net = Lazy.force counter_mapped in
  let bles = Pack.Ble.form net in
  (* every latch fed by a single-fanout LUT fuses: LUT count + FF count
     >= BLE count, and every latch appears in exactly one BLE *)
  let ff_bles =
    Array.to_list bles |> List.filter (fun b -> Pack.Ble.uses_ff b)
  in
  Alcotest.(check int) "all FFs in BLEs"
    (List.length (Logic.latches net))
    (List.length ff_bles);
  (* fused BLEs use both halves *)
  Alcotest.(check bool) "some fused BLEs" true
    (List.exists (fun (b : Pack.Ble.t) -> b.Pack.Ble.lut <> None) ff_bles)

let test_pack_respects_limits () =
  List.iter
    (fun (name, vhdl) ->
      let net = mapped_of vhdl in
      List.iter
        (fun (n, i) ->
          let p = Pack.Cluster.pack ~n ~i net in
          Alcotest.(check bool)
            (Printf.sprintf "%s N=%d I=%d valid" name n i)
            true (Pack.Cluster.check p);
          Alcotest.(check int)
            (Printf.sprintf "%s BLEs preserved" name)
            (Array.length (Pack.Ble.form net))
            (Pack.Cluster.ble_count p))
        [ (5, 12); (2, 6); (8, 18); (1, 4) ])
    Core.Bench_circuits.quick_suite

let test_pack_infeasible_reported () =
  let net = Lazy.force alu_mapped in
  (* a 4-LUT may need 4 inputs; I = 3 cannot host it *)
  match Pack.Cluster.pack ~n:5 ~i:3 net with
  | exception Pack.Cluster.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_netfile_roundtrip () =
  let net = Lazy.force counter_mapped in
  let p = Pack.Cluster.pack ~n:5 ~i:12 net in
  let text = Pack.Netfile.to_string p in
  let p2 = Pack.Netfile.of_string net text in
  Alcotest.(check int) "cluster count"
    (Pack.Cluster.cluster_count p)
    (Pack.Cluster.cluster_count p2);
  Alcotest.(check int) "ble count"
    (Pack.Cluster.ble_count p)
    (Pack.Cluster.ble_count p2);
  Alcotest.(check bool) "valid" true (Pack.Cluster.check p2);
  (* cluster contents match (same BLE output signals per cluster) *)
  let signature p =
    Array.to_list p.Pack.Cluster.clusters
    |> List.map (fun (c : Pack.Cluster.t) ->
           List.map (fun (b : Pack.Ble.t) -> b.Pack.Ble.output) c.Pack.Cluster.bles
           |> List.sort compare)
  in
  Alcotest.(check (list (list int))) "contents" (signature p) (signature p2)

(* ---------- architecture ---------- *)

let test_params_rule () =
  Alcotest.(check int) "I=(K/2)(N+1)" 12
    (Fpga_arch.Params.recommended_inputs ~k:4 ~n:5);
  Alcotest.(check bool) "amdrel follows rule" true
    (Fpga_arch.Params.follows_input_rule Fpga_arch.Params.amdrel)

let test_params_validation () =
  let bad = { Fpga_arch.Params.amdrel with Fpga_arch.Params.k = 9 } in
  match Fpga_arch.Params.validate bad with
  | exception Fpga_arch.Params.Invalid_params _ -> ()
  | _ -> Alcotest.fail "expected invalid params"

let test_archfile_roundtrip () =
  let p =
    {
      Fpga_arch.Params.amdrel with
      Fpga_arch.Params.n = 4;
      i = 10;
      segment_length = 2;
      switch_width = 16.0;
    }
  in
  let p2 = Fpga_arch.Archfile.of_string (Fpga_arch.Archfile.to_string p) in
  Alcotest.(check bool) "round trip" true (p = p2)

let test_grid_sizing () =
  let g = Fpga_arch.Grid.size_for ~n_clbs:10 ~n_ios:20 ~io_rat:2 in
  Alcotest.(check bool) "fits clbs" true
    (Fpga_arch.Grid.n_clb_slots g >= 10);
  Alcotest.(check bool) "fits ios" true (Fpga_arch.Grid.n_pad_slots g >= 20);
  Alcotest.(check int) "pad positions distinct"
    (Fpga_arch.Grid.n_pad_slots g)
    (List.length
       (List.sort_uniq compare (Fpga_arch.Grid.pad_positions g)))

(* ---------- placement ---------- *)

let placed_counter =
  lazy
    (let net = Lazy.force counter_mapped in
     let p = Pack.Cluster.pack ~n:5 ~i:12 net in
     let problem = Place.Problem.build p in
     let r = Place.Anneal.run problem in
     (problem, r))

let test_placement_legal () =
  let _, r = Lazy.force placed_counter in
  Alcotest.(check bool) "legal" true (Place.Placement.legal r.Place.Anneal.placement)

let test_placement_improves () =
  let _, r = Lazy.force placed_counter in
  Alcotest.(check bool) "cost reduced" true
    (r.Place.Anneal.final_cost <= r.Place.Anneal.initial_cost);
  (* the exit cost is resummed from exact per-net costs in total_cost's
     order, so the match is bit-exact, not approximate *)
  Alcotest.(check (float 0.0)) "incremental cost consistent"
    (Place.Placement.total_cost r.Place.Anneal.placement)
    r.Place.Anneal.final_cost

let test_placement_deterministic () =
  let net = Lazy.force counter_mapped in
  let p = Pack.Cluster.pack ~n:5 ~i:12 net in
  let run () =
    let problem = Place.Problem.build p in
    (Place.Anneal.run ~options:{ Place.Anneal.seed = 42; inner_num = 1.0 }
       problem)
      .Place.Anneal.final_cost
  in
  Alcotest.(check (float 1e-9)) "same seed, same cost" (run ()) (run ())

(* A degenerate zero-cost placement (only self-nets, so every bounding
   box is a point) must still terminate: the exit threshold floors at a
   positive value instead of scaling a zero cost down to 0. *)
let test_zero_cost_terminates () =
  let net = Logic.create ~model:"zero" () in
  let packing =
    {
      Pack.Cluster.net;
      clusters = [||];
      n = 5;
      i = 12;
      cluster_of_ble = Hashtbl.create 1;
    }
  in
  let self b = { Place.Problem.signal = b; driver = b; sinks = [| b |] } in
  let problem =
    {
      Place.Problem.packing;
      blocks = [| Place.Problem.Input_pad 0; Place.Problem.Input_pad 1 |];
      nets = [| self 0; self 1 |];
      grid = Fpga_arch.Grid.size_for ~n_clbs:1 ~n_ios:2 ~io_rat:2;
    }
  in
  let r = Place.Anneal.run problem in
  Alcotest.(check (float 0.0)) "final cost exactly zero" 0.0
    r.Place.Anneal.final_cost;
  Alcotest.(check bool) "schedule actually ran" true (r.Place.Anneal.moves > 0);
  Alcotest.(check bool) "legal" true
    (Place.Placement.legal r.Place.Anneal.placement)

(* Incremental bounding boxes, maintained through a long random move
   sequence with the annealer's shift/settle discipline, must end
   bit-identical to from-scratch scans of the final placement. *)
let prop_bbox_incremental =
  QCheck.Test.make ~count:25
    ~name:"incremental bboxes = from-scratch scans after random moves"
    QCheck.(int_bound 100000)
    (fun seed ->
      let net = Lazy.force counter_mapped in
      let p = Pack.Cluster.pack ~n:5 ~i:12 net in
      let problem = Place.Problem.build p in
      let pl = Place.Placement.initial ~seed:(seed + 1) problem in
      let cache = Place.Placement.bbox_cache pl in
      let rng = Util.Prng.create (seed + 3) in
      let grid = problem.Place.Problem.grid in
      let n_blocks = Array.length problem.Place.Problem.blocks in
      let clb_slots = Array.of_list (Fpga_arch.Grid.clb_positions grid) in
      let pad_slots = Array.of_list (Fpga_arch.Grid.pad_positions grid) in
      let settled = Array.make (Array.length problem.Place.Problem.nets) false in
      for _ = 1 to 300 do
        let b = Util.Prng.int rng n_blocks in
        let target =
          match problem.Place.Problem.blocks.(b) with
          | Place.Problem.Cluster_block _ ->
              let x, y = Util.Prng.pick rng clb_slots in
              Fpga_arch.Grid.Clb (x, y)
          | Place.Problem.Input_pad _ | Place.Problem.Output_pad _ ->
              let x, y, s = Util.Prng.pick rng pad_slots in
              Fpga_arch.Grid.Pad (x, y, s)
        in
        if target <> pl.Place.Placement.loc.(b) then begin
          let before = Array.init n_blocks (Place.Placement.coords pl) in
          let (_undo : unit -> unit) = Place.Anneal.apply_move pl b target in
          let movers =
            List.filter
              (fun m -> Place.Placement.coords pl m <> before.(m))
              (List.init n_blocks Fun.id)
          in
          List.iter
            (fun m ->
              Array.iter
                (fun (ni, _) -> settled.(ni) <- false)
                cache.Place.Placement.touch.(m))
            movers;
          List.iter
            (fun m ->
              Array.iter
                (fun (ni, count) ->
                  if not settled.(ni) then
                    if
                      not
                        (Place.Placement.shift_box
                           cache.Place.Placement.boxes.(ni)
                           ~count ~src:before.(m)
                           ~dst:(Place.Placement.coords pl m))
                    then begin
                      Place.Placement.scan_box pl ni
                        cache.Place.Placement.boxes.(ni);
                      settled.(ni) <- true
                    end)
                cache.Place.Placement.touch.(m))
            movers
        end
      done;
      Array.for_all
        (fun ni ->
          Place.Placement.box_cost cache ni
          = Place.Placement.net_cost pl problem.Place.Problem.nets.(ni))
        (Array.init (Array.length problem.Place.Problem.nets) Fun.id))

let test_problem_excludes_clock () =
  let net = Lazy.force counter_mapped in
  let p = Pack.Cluster.pack ~n:5 ~i:12 net in
  let problem = Place.Problem.build p in
  let clk_sig = Logic.find_exn net "clk" in
  Alcotest.(check bool) "clock not routed" true
    (Array.for_all
       (fun (n : Place.Problem.net) -> n.Place.Problem.signal <> clk_sig)
       problem.Place.Problem.nets)

(* ---------- routing ---------- *)

let routed_counter =
  lazy
    (let _, r = Lazy.force placed_counter in
     Route.Router.route_min_width Fpga_arch.Params.amdrel
       r.Place.Anneal.placement)

let test_routing_no_overuse () =
  let routed = Lazy.force routed_counter in
  Alcotest.(check bool) "no overuse" true
    (Route.Pathfinder.no_overuse routed.Route.Router.result)

let test_routing_connects_all_nets () =
  let routed = Lazy.force routed_counter in
  let g = routed.Route.Router.graph in
  let terminals = Route.Router.net_terminals g routed.Route.Router.problem in
  Array.iteri
    (fun idx (spec : Route.Pathfinder.net_spec) ->
      let tr = routed.Route.Router.result.Route.Pathfinder.trees.(idx) in
      Alcotest.(check bool)
        (Printf.sprintf "net %d connected" idx)
        true
        (Route.Pathfinder.tree_connects ~source:spec.Route.Pathfinder.source
           ~sinks:spec.Route.Pathfinder.sinks tr))
    terminals

let test_min_width_is_minimal () =
  let routed = Lazy.force routed_counter in
  match routed.Route.Router.min_width with
  | None -> Alcotest.fail "expected a width search"
  | Some w ->
      Alcotest.(check bool) "positive" true (w >= 1);
      (* one below the minimum must fail (if > 1) *)
      if w > 1 then
        Alcotest.(check bool) "w-1 unroutable" true
          (Route.Router.try_width ~max_iterations:30 Fpga_arch.Params.amdrel
             routed.Route.Router.placement (w - 1)
          = None)

let test_timing_positive () =
  let routed = Lazy.force routed_counter in
  let st = Route.Router.stats routed in
  Alcotest.(check bool) "critical path positive" true
    (st.Route.Router.critical_path_s > 0.0);
  Alcotest.(check bool) "critical path sane" true
    (st.Route.Router.critical_path_s < 100e-9)

let test_rrgraph_capacities () =
  let routed = Lazy.force routed_counter in
  let g = routed.Route.Router.graph in
  Array.iter
    (fun (n : Route.Rrgraph.node) ->
      Alcotest.(check bool) "capacity positive" true (n.Route.Rrgraph.capacity >= 1))
    g.Route.Rrgraph.nodes

let test_segment_length_two_routes () =
  (* the same placement routes with length-2 segments *)
  let _, r = Lazy.force placed_counter in
  let params =
    Fpga_arch.Params.validate
      { Fpga_arch.Params.amdrel with Fpga_arch.Params.segment_length = 2 }
  in
  let routed = Route.Router.route_min_width params r.Place.Anneal.placement in
  Alcotest.(check bool) "routes" true
    (Route.Pathfinder.no_overuse routed.Route.Router.result)

(* ---------- power ---------- *)

let test_activity_bounds () =
  let net = Lazy.force counter_mapped in
  let act = Power.Activity.estimate ~cycles:128 net in
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "activity %d in range" i)
        true
        (a >= 0.0 && a <= 2.0))
    act.Power.Activity.activity;
  Array.iter
    (fun p ->
      Alcotest.(check bool) "probability in range" true (p >= 0.0 && p <= 1.0))
    act.Power.Activity.probability

let test_activity_counter_bit0 () =
  (* bit 0 of a free-running counter toggles every cycle: activity ~ 1;
     enable/reset are random-driven, so run with inputs forced *)
  let vhdl = Core.Bench_circuits.counter 4 in
  let net = mapped_of vhdl in
  (* tie en high, rst low by replacing the inputs with constants *)
  let en = Logic.find_exn net "en" in
  let rst = Logic.find_exn net "rst" in
  Logic.set_driver net en (Logic.Const true);
  Logic.set_driver net rst (Logic.Const false);
  let act = Power.Activity.estimate ~cycles:128 net in
  let q0 =
    match Logic.find_vector net "cnt" with
    | (0, id) :: _ -> id
    | _ -> Alcotest.fail "cnt[0] not found"
  in
  Alcotest.(check (float 0.05)) "bit0 toggles every cycle" 1.0
    act.Power.Activity.activity.(q0)

let test_power_positive_and_decomposed () =
  let routed = Lazy.force routed_counter in
  let report = Power.Model.estimate routed in
  Alcotest.(check bool) "dynamic > 0" true (report.Power.Model.dynamic_w > 0.0);
  Alcotest.(check bool) "clock > 0" true (report.Power.Model.clock_w > 0.0);
  Alcotest.(check bool) "leakage > 0" true (report.Power.Model.leakage_w > 0.0);
  Alcotest.(check (float 1e-9)) "total is the sum"
    (report.Power.Model.dynamic_w +. report.Power.Model.clock_w
    +. report.Power.Model.short_circuit_w +. report.Power.Model.leakage_w)
    report.Power.Model.total_w

let test_power_scales_with_frequency () =
  let routed = Lazy.force routed_counter in
  let at f =
    (Power.Model.estimate
       ~options:{ Power.Model.default_options with Power.Model.frequency = f }
       routed)
      .Power.Model.dynamic_w
  in
  Alcotest.(check (float 1e-9)) "linear in f" (2.0 *. at 50e6) (at 100e6)

let test_gated_clock_saves_power () =
  (* same design, gated clock on vs off: gated must not cost more when
     some flip-flops are idle; at minimum the model responds to the knob *)
  let _, r = Lazy.force placed_counter in
  let gated = Route.Router.route_min_width Fpga_arch.Params.amdrel r.Place.Anneal.placement in
  let ungated_params =
    { Fpga_arch.Params.amdrel with Fpga_arch.Params.gated_clock = false }
  in
  let ungated = Route.Router.route_min_width ungated_params r.Place.Anneal.placement in
  let pg = (Power.Model.estimate gated).Power.Model.clock_w in
  let pu = (Power.Model.estimate ungated).Power.Model.clock_w in
  Alcotest.(check bool) "clock power differs" true (pg <> pu)

(* ---------- bitstream ---------- *)

let test_bitstream_roundtrip () =
  let routed = Lazy.force routed_counter in
  let g = Bitstream.Dagger.generate routed in
  Alcotest.(check bool) "verified" true
    (Bitstream.Dagger.verify routed g.Bitstream.Dagger.bytes
    = Bitstream.Dagger.Verified)

let test_bitstream_detects_corruption () =
  let routed = Lazy.force routed_counter in
  let g = Bitstream.Dagger.generate routed in
  let bytes = Bytes.of_string g.Bitstream.Dagger.bytes in
  (* flip one bit in the middle *)
  let pos = Bytes.length bytes / 2 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  match Bitstream.Dagger.verify routed (Bytes.to_string bytes) with
  | Bitstream.Dagger.Corrupted _ -> ()
  | _ -> Alcotest.fail "corruption must be detected"

let test_bitstream_crc () =
  let a = Bitstream.Crc.of_string "hello world" in
  let b = Bitstream.Crc.of_string "hello world" in
  let c = Bitstream.Crc.of_string "hello worle" in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool) "sensitive" true (a <> c);
  (* known value: CRC32("123456789") = 0xCBF43926 *)
  Alcotest.(check int32) "known vector" 0xCBF43926l
    (Bitstream.Crc.of_string "123456789")

let test_bitstream_lut_bits_nonempty () =
  let routed = Lazy.force routed_counter in
  let cfg = Bitstream.Layout.extract routed in
  Alcotest.(check bool) "some LUT bits set" true
    (List.exists
       (fun (clb : Bitstream.Layout.clb_config) ->
         Array.exists
           (fun (b : Bitstream.Layout.ble_config) -> b.Bitstream.Layout.lut_bits <> 0)
           clb.Bitstream.Layout.bles)
       cfg.Bitstream.Layout.clbs)

let test_static_activity_gate_laws () =
  (* exact probabilities for simple gates under independent inputs *)
  let p = [| 0.5; 0.5 |] in
  Alcotest.(check (float 1e-9)) "AND" 0.25
    (Power.Activity.tt_probability (Tt.and_n 2) p);
  Alcotest.(check (float 1e-9)) "OR" 0.75
    (Power.Activity.tt_probability (Tt.or_n 2) p);
  Alcotest.(check (float 1e-9)) "XOR" 0.5
    (Power.Activity.tt_probability (Tt.xor_n 2) p);
  (* XOR is always sensitive to each input *)
  Alcotest.(check (float 1e-9)) "XOR sensitivity" 1.0
    (Power.Activity.boolean_difference (Tt.xor_n 2) 0 p);
  (* AND is sensitive to input 0 only when input 1 is high *)
  Alcotest.(check (float 1e-9)) "AND sensitivity" 0.5
    (Power.Activity.boolean_difference (Tt.and_n 2) 0 p)

let test_static_activity_close_to_simulation () =
  (* the two modes must broadly agree on a combinational circuit *)
  let net = mapped_of (Core.Bench_circuits.parity 16) in
  let sim = Power.Activity.estimate ~cycles:2048 net in
  let ana = Power.Activity.estimate_static net in
  List.iter
    (fun o ->
      let s = sim.Power.Activity.activity.(o) in
      let a = ana.Power.Activity.activity.(o) in
      Alcotest.(check bool)
        (Printf.sprintf "parity output activity sim=%.2f ana=%.2f" s a)
        true
        (Float.abs (s -. a) < 0.2))
    (Logic.outputs net)

let test_power_analytic_mode () =
  let routed = Lazy.force routed_counter in
  let options =
    { Power.Model.default_options with
      Power.Model.activity_mode = Power.Model.Analytic }
  in
  let r = Power.Model.estimate ~options routed in
  let s = Power.Model.estimate routed in
  Alcotest.(check bool) "analytic positive" true (r.Power.Model.total_w > 0.0);
  (* same order of magnitude as the simulated estimate *)
  Alcotest.(check bool) "modes agree within 3x" true
    (r.Power.Model.total_w < 3.0 *. s.Power.Model.total_w
    && s.Power.Model.total_w < 3.0 *. r.Power.Model.total_w)

let test_timing_monotone_in_distance () =
  (* the Elmore model: a longer pass-transistor chain is slower *)
  let params = Fpga_arch.Params.amdrel in
  let c = Route.Timing.default_constants params in
  Alcotest.(check bool) "switch R positive" true (c.Route.Timing.r_switch > 0.0);
  Alcotest.(check bool) "wire RC positive" true
    (c.Route.Timing.r_wire_tile > 0.0 && c.Route.Timing.c_wire_tile > 0.0);
  (* wider switches are less resistive *)
  let r10 = Route.Timing.pass_resistance Spice.Tech.stm018 10.0 in
  let r20 = Route.Timing.pass_resistance Spice.Tech.stm018 20.0 in
  Alcotest.(check (float 1.0)) "R scales inversely" (r10 /. 2.0) r20

let test_clb_config_bits_formula () =
  (* K=4 N=5 I=12: 5*(16+2) + 5*4*ceil(log2 18) = 90 + 100 = 190 *)
  Alcotest.(check int) "amdrel CLB bits" 190
    (Fpga_arch.Params.clb_config_bits Fpga_arch.Params.amdrel)

let test_pad_tt_dont_care () =
  (* padding replicates over unused inputs: eval must not depend on them *)
  let tt = Tt.xor_n 2 in
  let bits = Bitstream.Layout.pad_tt tt 4 in
  for row = 0 to 15 do
    let expect = Tt.eval tt (row land 3) in
    Alcotest.(check bool) "padded eval" expect ((bits lsr row) land 1 = 1)
  done

let test_route_min_width_deterministic () =
  let routed1 = Lazy.force routed_counter in
  let _, r = Lazy.force placed_counter in
  let routed2 =
    Route.Router.route_min_width Fpga_arch.Params.amdrel
      r.Place.Anneal.placement
  in
  Alcotest.(check (option int)) "same Wmin"
    routed1.Route.Router.min_width routed2.Route.Router.min_width

(* ---------- fabric emulation ---------- *)

let test_fabric_equivalence () =
  let routed = Lazy.force routed_counter in
  let g = Bitstream.Dagger.generate routed in
  Alcotest.(check bool) "fabric equivalent" true
    (Bitstream.Dagger.verify_functional routed g.Bitstream.Dagger.bytes)

let test_fabric_detects_lut_tampering () =
  let routed = Lazy.force routed_counter in
  let params = routed.Route.Router.graph.Route.Rrgraph.params in
  let cfg = Bitstream.Layout.extract routed in
  (* flip one LUT bit in a used BLE *)
  let tampered =
    {
      cfg with
      Bitstream.Layout.clbs =
        (match cfg.Bitstream.Layout.clbs with
        | first :: rest ->
            let bles =
              Array.map
                (fun (b : Bitstream.Layout.ble_config) ->
                  if b.Bitstream.Layout.lut_bits <> 0 then
                    { b with Bitstream.Layout.lut_bits =
                        b.Bitstream.Layout.lut_bits lxor 1 }
                  else b)
                first.Bitstream.Layout.bles
            in
            { first with Bitstream.Layout.bles } :: rest
        | [] -> []);
    }
  in
  let bytes = Bitstream.Frames.encode params tampered in
  let reference =
    routed.Route.Router.problem.Place.Problem.packing.Pack.Cluster.net
  in
  Alcotest.(check bool) "tampered LUT caught" false
    (Bitstream.Fabric.functionally_equivalent params ~reference bytes)

let test_fabric_netlist_structure () =
  let routed = Lazy.force routed_counter in
  let g = Bitstream.Dagger.generate routed in
  let params = routed.Route.Router.graph.Route.Rrgraph.params in
  let fabric = Bitstream.Dagger.emulate params g.Bitstream.Dagger.bytes in
  let reference =
    routed.Route.Router.problem.Place.Problem.packing.Pack.Cluster.net
  in
  (* the fabric netlist has the same interface and at least as many
     registers (every reference latch occupies a BLE flip-flop) *)
  Alcotest.(check int) "same outputs"
    (List.length (Logic.outputs reference))
    (List.length (Logic.outputs fabric));
  Alcotest.(check bool) "registers preserved" true
    (List.length (Logic.latches fabric)
    >= List.length (Logic.latches reference))

let suite =
  [
    ("ble formation", `Quick, test_ble_formation_fuses);
    ("pack respects limits", `Quick, test_pack_respects_limits);
    ("pack infeasible", `Quick, test_pack_infeasible_reported);
    ("netfile roundtrip", `Quick, test_netfile_roundtrip);
    ("params rule", `Quick, test_params_rule);
    ("params validation", `Quick, test_params_validation);
    ("archfile roundtrip", `Quick, test_archfile_roundtrip);
    ("grid sizing", `Quick, test_grid_sizing);
    ("placement legal", `Quick, test_placement_legal);
    ("placement improves", `Quick, test_placement_improves);
    ("placement deterministic", `Quick, test_placement_deterministic);
    ("zero-cost placement terminates", `Quick, test_zero_cost_terminates);
    QCheck_alcotest.to_alcotest prop_bbox_incremental;
    ("clock excluded from routing", `Quick, test_problem_excludes_clock);
    ("routing no overuse", `Quick, test_routing_no_overuse);
    ("routing connects all nets", `Quick, test_routing_connects_all_nets);
    ("minimum width is minimal", `Quick, test_min_width_is_minimal);
    ("timing positive", `Quick, test_timing_positive);
    ("rrgraph capacities", `Quick, test_rrgraph_capacities);
    ("segment length 2 routes", `Quick, test_segment_length_two_routes);
    ("activity bounds", `Quick, test_activity_bounds);
    ("activity counter bit0", `Quick, test_activity_counter_bit0);
    ("power decomposition", `Quick, test_power_positive_and_decomposed);
    ("power scales with frequency", `Quick, test_power_scales_with_frequency);
    ("gated clock knob", `Quick, test_gated_clock_saves_power);
    ("bitstream roundtrip", `Quick, test_bitstream_roundtrip);
    ("bitstream corruption detected", `Quick, test_bitstream_detects_corruption);
    ("bitstream crc", `Quick, test_bitstream_crc);
    ("bitstream lut bits", `Quick, test_bitstream_lut_bits_nonempty);
    ("static activity gate laws", `Quick, test_static_activity_gate_laws);
    ("static vs simulated activity", `Quick, test_static_activity_close_to_simulation);
    ("power analytic mode", `Quick, test_power_analytic_mode);
    ("timing constants sane", `Quick, test_timing_monotone_in_distance);
    ("clb config bits formula", `Quick, test_clb_config_bits_formula);
    ("lut padding don't-care", `Quick, test_pad_tt_dont_care);
    ("min width deterministic", `Quick, test_route_min_width_deterministic);
    ("fabric equivalence", `Quick, test_fabric_equivalence);
    ("fabric detects lut tampering", `Quick, test_fabric_detects_lut_tampering);
    ("fabric netlist structure", `Quick, test_fabric_netlist_structure);
  ]
