(* The content-addressed stage store and the flow's memoisation on top
   of it: key schema, corrupt-entry tolerance, warm-run byte-identity,
   invalidation granularity, and the persistent routability table. *)

module R = Obs.Registry

let counter obs name =
  match R.find (R.snapshot obs) name with
  | Some (R.Counter n) -> n
  | _ -> 0

let fresh_dir () = Filename.temp_dir "amdrel-cache-test" ""

let rec span_names (s : Obs.Span.span) =
  s.Obs.Span.name :: List.concat_map span_names s.Obs.Span.children

let trace_names tr = List.concat_map span_names (Obs.Span.roots tr)

(* One flow run against a given cache directory, with its own registry
   and its own span trace so hits/misses and skipped stages are
   observable per run. *)
let run_cached ?(config = Core.Flow.default_config) ~dir vhdl =
  let obs = R.create () in
  let tr = Obs.Span.create () in
  let r =
    Obs.Span.with_trace tr (fun () ->
        Core.Flow.run_vhdl
          ~config:{ config with Core.Flow.cache_dir = Some dir }
          ~obs vhdl)
  in
  (r, obs, tr)

let bytes_of r = r.Core.Flow.bitstream.Bitstream.Dagger.bytes

(* ---------- the store itself ---------- *)

let test_store_roundtrip () =
  let dir = fresh_dir () in
  let obs = R.create () in
  let s = Cache.Store.open_ ~obs dir in
  let k = Cache.Store.key [ "stage"; "v1"; "abc" ] in
  Alcotest.(check (option string)) "miss before store" None (Cache.Store.find s k);
  Cache.Store.store s k "payload";
  Alcotest.(check (option string)) "hit after store" (Some "payload")
    (Cache.Store.find s k);
  Alcotest.(check int) "one miss" 1 (counter obs "cache.miss");
  Alcotest.(check int) "one hit" 1 (counter obs "cache.hit");
  Alcotest.(check int) "one store" 1 (counter obs "cache.store");
  Alcotest.(check bool) "bytes counted" true (counter obs "cache.bytes" > 0);
  (* a second handle on the same directory sees the entry: the cache is
     the directory, not the process *)
  let s2 = Cache.Store.open_ dir in
  Alcotest.(check (option string)) "shared on disk" (Some "payload")
    (Cache.Store.find s2 k)

let test_key_schema () =
  let k = Cache.Store.key in
  Alcotest.(check string) "stable across calls" (k [ "a"; "b" ]) (k [ "a"; "b" ]);
  Alcotest.(check bool) "content-sensitive" false (k [ "a"; "b" ] = k [ "a"; "c" ]);
  Alcotest.(check bool) "part-boundary-sensitive" false
    (k [ "ab"; "" ] = k [ "a"; "b" ]);
  Alcotest.(check bool) "order-sensitive" false (k [ "a"; "b" ] = k [ "b"; "a" ]);
  Alcotest.(check bool) "32-char hex digest" true
    (String.length (k [ "x" ]) = 32
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
         (k [ "x" ]))

let test_corrupt_entry_skipped () =
  let dir = fresh_dir () in
  let obs = R.create () in
  let s = Cache.Store.open_ ~obs dir in
  let k = Cache.Store.key [ "stage"; "v1"; "x" ] in
  Cache.Store.store s k [ 1; 2; 3 ];
  let p = Cache.Store.path s k in
  (* truncate the entry mid-stream (a crashed writer without the atomic
     rename would leave exactly this) *)
  let ic = open_in_bin p in
  let half = really_input_string ic (in_channel_length ic / 2) in
  close_in ic;
  let oc = open_out_bin p in
  output_string oc half;
  close_out oc;
  Alcotest.(check (option (list int))) "truncated entry reads as miss" None
    (Cache.Store.find s k);
  Alcotest.(check bool) "corruption counted" true
    (counter obs "cache.corrupt" >= 1);
  (* arbitrary garbage is equally non-fatal *)
  let oc = open_out_bin p in
  output_string oc "not a marshal stream";
  close_out oc;
  Alcotest.(check (option (list int))) "garbage entry reads as miss" None
    (Cache.Store.find s k);
  (* recompute-and-store over the corpse restores service *)
  Cache.Store.store s k [ 1; 2; 3 ];
  Alcotest.(check (option (list int))) "restored after re-store"
    (Some [ 1; 2; 3 ])
    (Cache.Store.find s k);
  (* an entry whose echoed key disagrees with its filename (e.g. a file
     copied between key slots) reads as a miss, never as a wrong value *)
  let ic = open_in_bin p in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let k2 = Cache.Store.key [ "stage"; "v1"; "y" ] in
  let oc = open_out_bin (Cache.Store.path s k2) in
  output_string oc raw;
  close_out oc;
  Alcotest.(check (option (list int))) "key-mismatched entry reads as miss" None
    (Cache.Store.find s k2)

(* ---------- flow memoisation ---------- *)

let test_flow_warm_hits () =
  let dir = fresh_dir () in
  let vhdl = Core.Bench_circuits.counter 8 in
  let cold, obs_c, tr_c = run_cached ~dir vhdl in
  Alcotest.(check int) "cold: no hits" 0 (counter obs_c "cache.hit");
  (* seven stages + the routability table *)
  Alcotest.(check int) "cold: every stage stored" 8 (counter obs_c "cache.store");
  let warm, obs_w, tr_w = run_cached ~dir vhdl in
  Alcotest.(check int) "warm: all seven stages hit" 7 (counter obs_w "cache.hit");
  Alcotest.(check int) "warm: no misses" 0 (counter obs_w "cache.miss");
  Alcotest.(check int) "warm: nothing stored" 0 (counter obs_w "cache.store");
  Alcotest.(check string) "bitstream byte-identical" (bytes_of cold)
    (bytes_of warm);
  Alcotest.(check string) "timing report byte-identical"
    (Core.Flow.timing_report_json cold)
    (Core.Flow.timing_report_json warm);
  (* skipped stages leave neither a timer in the registry nor a span in
     the trace *)
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " timed on cold run") true
        (List.mem_assoc stage cold.Core.Flow.times);
      Alcotest.(check bool) (stage ^ " not timed on warm run") false
        (List.mem_assoc stage warm.Core.Flow.times);
      Alcotest.(check bool) (stage ^ " span in cold trace") true
        (List.mem stage (trace_names tr_c));
      Alcotest.(check bool) (stage ^ " span absent from warm trace") false
        (List.mem stage (trace_names tr_w)))
    [
      "vhdl-parser"; "diviner-synth"; "sis-flowmap"; "t-vpack"; "vpr-place";
      "vpr-route"; "sta"; "dagger";
    ];
  (* the deterministic figures derived from cached artifacts are
     re-emitted identically on the warm path *)
  List.iter
    (fun g ->
      Alcotest.(check (float 0.0)) (g ^ " re-emitted on warm run")
        (List.assoc g cold.Core.Flow.times)
        (List.assoc g warm.Core.Flow.times))
    [
      "place.final-cost"; "place.moves"; "sta.dmax"; "vpr-route.iterations";
      "vpr-route.heap-pops";
    ]

let test_flow_invalidation () =
  let dir = fresh_dir () in
  let vhdl = Core.Bench_circuits.counter 8 in
  let cold, _, _ = run_cached ~dir vhdl in
  (* source-byte edit that elaborates to the same network: only synth
     re-runs (early cutoff — techmap keys on the artifact, not the key
     chain) *)
  let edited, obs_e, _ = run_cached ~dir (vhdl ^ "\n-- a trailing comment\n") in
  Alcotest.(check int) "comment edit: only synth misses" 1
    (counter obs_e "cache.miss");
  Alcotest.(check int) "comment edit: downstream hits" 6
    (counter obs_e "cache.hit");
  Alcotest.(check string) "comment edit: bitstream unchanged" (bytes_of cold)
    (bytes_of edited);
  (* stage-config perturbation: a new placement seed invalidates place
     and everything downstream, keeps the whole front end *)
  let config = { Core.Flow.default_config with Core.Flow.seed = 2 } in
  let _, obs_s, _ = run_cached ~config ~dir vhdl in
  Alcotest.(check int) "seed change: front end hits" 3 (counter obs_s "cache.hit");
  Alcotest.(check int) "seed change: place and below miss" 5
    (counter obs_s "cache.miss");
  (* arch-param perturbation: segment length feeds routing only — the
     placement (which ignores routing params) still hits *)
  let params =
    Fpga_arch.Params.validate
      { Fpga_arch.Params.amdrel with Fpga_arch.Params.segment_length = 2 }
  in
  let config = { Core.Flow.default_config with Core.Flow.params } in
  let _, obs_p, _ = run_cached ~config ~dir vhdl in
  Alcotest.(check int) "segment change: hits through place" 4
    (counter obs_p "cache.hit");
  Alcotest.(check int) "segment change: route and below miss" 4
    (counter obs_p "cache.miss")

let test_flow_jobs_key_stable () =
  let dir = fresh_dir () in
  let vhdl = Core.Bench_circuits.counter 8 in
  let cfg jobs = { Core.Flow.default_config with Core.Flow.jobs = Some jobs } in
  let cold, _, _ = run_cached ~config:(cfg 1) ~dir vhdl in
  let warm, obs_w, _ = run_cached ~config:(cfg 4) ~dir vhdl in
  Alcotest.(check int) "jobs=4 hits every jobs=1 entry" 7
    (counter obs_w "cache.hit");
  Alcotest.(check int) "no misses across pool sizes" 0
    (counter obs_w "cache.miss");
  Alcotest.(check string) "bitstream identical" (bytes_of cold) (bytes_of warm)

(* ---------- persistent routability table ---------- *)

let test_routability_table_fewer_probes () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.counter 8) in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  let placement = (Place.Anneal.run problem).Place.Anneal.placement in
  let params = Fpga_arch.Params.amdrel in
  let probes obs =
    match R.find (R.snapshot obs) "route.width-probes" with
    | Some (R.Gauge v) -> int_of_float v
    | _ -> Alcotest.fail "route.width-probes not recorded"
  in
  let table = Hashtbl.create 16 in
  let o1 = R.create () in
  let cold = Route.Router.route_min_width ~table ~obs:o1 params placement in
  let o2 = R.create () in
  let warm = Route.Router.route_min_width ~table ~obs:o2 params placement in
  Alcotest.(check (option int)) "same min width" cold.Route.Router.min_width
    warm.Route.Router.min_width;
  Alcotest.(check bool) "identical route trees" true
    (cold.Route.Router.result.Route.Pathfinder.trees
    = warm.Route.Router.result.Route.Pathfinder.trees);
  Alcotest.(check bool) "cold search probes at least once" true (probes o1 >= 1);
  Alcotest.(check bool) "warm table: strictly fewer probes" true
    (probes o2 < probes o1);
  (* the table from an identical search covers the whole decision path *)
  Alcotest.(check int) "warm table: zero probes" 0 (probes o2)

(* ---------- the headline regression: mult12 warm re-run ---------- *)

let test_mult12_warm_regression () =
  let dir = fresh_dir () in
  let vhdl = Core.Bench_circuits.multiplier 12 in
  let cold, _, tr_c = run_cached ~dir vhdl in
  let warm, obs_w, tr_w = run_cached ~dir vhdl in
  Alcotest.(check bool) "cache.hit > 0" true (counter obs_w "cache.hit" > 0);
  Alcotest.(check int) "no warm misses" 0 (counter obs_w "cache.miss");
  Alcotest.(check string) "byte-identical bitstream" (bytes_of cold)
    (bytes_of warm);
  Alcotest.(check string) "byte-identical timing report"
    (Core.Flow.timing_report_json ~design:"mult12" cold)
    (Core.Flow.timing_report_json ~design:"mult12" warm);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " span in cold trace") true
        (List.mem s (trace_names tr_c));
      Alcotest.(check bool) (s ^ " span absent from warm trace") false
        (List.mem s (trace_names tr_w)))
    [ "diviner-synth"; "t-vpack"; "vpr-place"; "vpr-route"; "sta"; "dagger" ];
  (* nothing ran, so the warm trace is the bare flow root *)
  Alcotest.(check (list string)) "warm trace is the flow root alone"
    [ "flow" ] (trace_names tr_w)

let suite =
  [
    ("store roundtrip + counters", `Quick, test_store_roundtrip);
    ("key schema", `Quick, test_key_schema);
    ("corrupt entry skipped", `Quick, test_corrupt_entry_skipped);
    ("flow warm hits, byte-identical", `Quick, test_flow_warm_hits);
    ("flow invalidation granularity", `Quick, test_flow_invalidation);
    ("flow keys stable across jobs", `Quick, test_flow_jobs_key_stable);
    ( "routability table fewer probes",
      `Quick,
      test_routability_table_fewer_probes );
    ("mult12 warm regression", `Slow, test_mult12_warm_regression);
  ]
