(* Progress-event sink: ring bounding, sequence stamping, the ambient
   producer discipline, JSON rendering, and the flow-level determinism
   contract (same event-kind sequence at any jobs value; cache hits
   replace stage events on warm runs). *)

module Ev = Obs.Events
module E = Obs.Emit

let iter i = Ev.Route_iteration { iteration = i; overused = 0; rerouted = 0; heap_pops = 0 }

let iteration_of = function
  | Ev.Route_iteration { iteration; _ } -> Some iteration
  | _ -> None

(* ---------- ring mechanics ---------- *)

let test_ring_bounds () =
  let s = Ev.create ~capacity:16 () in
  for i = 0 to 39 do
    Ev.emit_to s (iter i)
  done;
  Alcotest.(check int) "dropped_total" 24 (Ev.dropped_total s);
  let events = Ev.drain s in
  Alcotest.(check int) "drained (gap + survivors)" 17 (List.length events);
  (match (List.hd events).Ev.kind with
  | Ev.Dropped { count } -> Alcotest.(check int) "gap size" 24 count
  | k -> Alcotest.failf "expected Dropped first, got %s" (Ev.kind_name k));
  (* the survivors are the first 16 emissions, in order: the ring drops
     the overflowing event, not the oldest *)
  let kept = List.filter_map (fun e -> iteration_of e.Ev.kind) events in
  Alcotest.(check (list int)) "survivors in emission order"
    (List.init 16 Fun.id) kept;
  Alcotest.(check (list int)) "drain empties the ring" []
    (List.map (fun e -> e.Ev.seq) (Ev.drain s))

let test_seq_monotone () =
  let s = Ev.create () in
  let seqs = ref [] in
  let note es = seqs := !seqs @ List.map (fun e -> e.Ev.seq) es in
  Ev.emit_to s (iter 0);
  Ev.emit_to s (iter 1);
  note (Ev.drain s);
  note [ Ev.heartbeat s ];
  let n = Ev.next_seq s in
  seqs := !seqs @ [ n ];
  Ev.emit_to s (iter 2);
  note (Ev.drain s);
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check int) "count" 5 (List.length !seqs);
  Alcotest.(check bool) "strictly increasing across drains/heartbeats" true
    (strictly_increasing !seqs)

let test_spsc_hammer () =
  let s = Ev.create ~capacity:64 () in
  let n = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Ev.emit_to s (iter i)
        done)
  in
  let got = ref [] in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec pump () =
    let es = Ev.drain s in
    got := !got @ List.filter_map (fun e -> iteration_of e.Ev.kind) es;
    if
      List.length !got + Ev.dropped_total s < n
      && Unix.gettimeofday () < deadline
    then pump ()
  in
  pump ();
  Domain.join producer;
  (* final drain picks up the tail published after the last pump *)
  got :=
    !got
    @ List.filter_map (fun e -> iteration_of e.Ev.kind) (Ev.drain s);
  Alcotest.(check int) "nothing lost silently" n
    (List.length !got + Ev.dropped_total s);
  let rec ordered = function
    | a :: (b :: _ as rest) -> a < b && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "payloads arrive in emission order" true
    (ordered !got)

(* ---------- ambient discipline ---------- *)

let test_ambient () =
  Alcotest.(check bool) "no ambient sink by default" false (Ev.active ());
  Ev.emit (iter 0);
  (* no sink: dropped silently *)
  let s = Ev.create () in
  Ev.with_sink s (fun () ->
      Alcotest.(check bool) "active inside with_sink" true (Ev.active ());
      Ev.emit (iter 1);
      Ev.without (fun () ->
          Alcotest.(check bool) "without suppresses" false (Ev.active ());
          Ev.emit (iter 2));
      Alcotest.(check bool) "restored after without" true (Ev.active ());
      Ev.emit (iter 3));
  Alcotest.(check bool) "restored after with_sink" false (Ev.active ());
  let kept = List.filter_map (fun e -> iteration_of e.Ev.kind) (Ev.drain s) in
  Alcotest.(check (list int)) "only in-scope emissions land" [ 1; 3 ] kept;
  (* worker domains see no ambient sink: the parent's installation is
     domain-local *)
  Ev.with_sink s (fun () ->
      let d = Domain.spawn (fun () -> Ev.active ()) in
      Alcotest.(check bool) "fresh domain has no ambient sink" false
        (Domain.join d))

(* ---------- rendering ---------- *)

let test_json () =
  let s = Ev.create () in
  Ev.emit_to s (Ev.Stage_begin { stage = "vpr-place" });
  Ev.emit_to s (Ev.Stage_end { stage = "vpr-place"; wall_s = 0.25 });
  match Ev.drain s with
  | [ b; e ] ->
      Alcotest.(check string) "stage-begin wire form"
        (Printf.sprintf
           "{\"event\": \"stage-begin\", \"seq\": %d, \"stage\": \
            \"vpr-place\", \"t_s\": %s}"
           b.Ev.seq
           (E.to_string (E.Float b.Ev.t_s)))
        (E.to_string (Ev.to_json b));
      (* the deterministic view drops seq/t_s/wall_s but keeps the kind
         and its stable payload *)
      let det ev =
        Option.map (fun fs -> E.to_string (E.Obj fs))
          (Ev.deterministic_fields ev)
      in
      Alcotest.(check (option string)) "deterministic stage-begin"
        (Some "{\"event\": \"stage-begin\", \"stage\": \"vpr-place\"}")
        (det b);
      Alcotest.(check (option string)) "deterministic stage-end strips wall_s"
        (Some "{\"event\": \"stage-end\", \"stage\": \"vpr-place\"}")
        (det e);
      Alcotest.(check (option string)) "heartbeat is volatile" None
        (det (Ev.heartbeat s));
      Alcotest.(check bool) "dropped is volatile" true
        (Ev.volatile (Ev.Dropped { count = 3 }))
  | es -> Alcotest.failf "expected 2 events, got %d" (List.length es)

(* ---------- flow-level contract ---------- *)

let flow_events ?(cache_dir = None) ~jobs vhdl =
  let config =
    {
      Core.Flow.default_config with
      Core.Flow.jobs = Some jobs;
      cache_dir;
      verify_mapping = false;
    }
  in
  let s = Ev.create () in
  let r = Ev.with_sink s (fun () -> Core.Flow.run_vhdl ~config vhdl) in
  (r, Ev.drain s)

let test_flow_stream () =
  let r, events = flow_events ~jobs:1 (Core.Bench_circuits.counter 4) in
  Alcotest.(check bool) "flow verified" true r.Core.Flow.bitstream_verified;
  let begins =
    List.filter_map
      (fun e ->
        match e.Ev.kind with
        | Ev.Stage_begin { stage } -> Some stage
        | _ -> None)
      events
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Printf.sprintf "stage %s streamed" stage)
        true (List.mem stage begins))
    [ "vhdl-parser"; "diviner-synth"; "t-vpack"; "vpr-place"; "vpr-route" ];
  (* every begin has a matching end *)
  let ends =
    List.filter_map
      (fun e ->
        match e.Ev.kind with
        | Ev.Stage_end { stage; _ } -> Some stage
        | _ -> None)
      events
  in
  Alcotest.(check (list string)) "begin/end pair up" begins ends;
  Alcotest.(check bool) "router iterations streamed" true
    (List.exists
       (fun e ->
         match e.Ev.kind with Ev.Route_iteration _ -> true | _ -> false)
       events);
  Alcotest.(check bool) "annealer temperatures streamed" true
    (List.exists
       (fun e ->
         match e.Ev.kind with Ev.Place_temperature _ -> true | _ -> false)
       events);
  let seqs = List.map (fun e -> e.Ev.seq) events in
  Alcotest.(check (list int)) "seq strictly increasing"
    (List.init (List.length seqs) (fun i -> List.hd seqs + i))
    seqs

let test_flow_determinism_across_jobs () =
  let vhdl = Core.Bench_circuits.counter 4 in
  let det events =
    List.filter_map
      (fun e ->
        Option.map (fun fs -> E.to_string (E.Obj fs))
          (Ev.deterministic_fields e))
      events
  in
  let _, e1 = flow_events ~jobs:1 vhdl in
  let _, e4 = flow_events ~jobs:4 vhdl in
  Alcotest.(check (list string))
    "event-kind sequence identical at jobs=1 and jobs=4" (det e1) (det e4)

let test_flow_cache_events () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "amdrel_ev_cache_%d" (Unix.getpid ()))
  in
  let cache_lookups events =
    List.filter_map
      (fun e ->
        match e.Ev.kind with
        | Ev.Cache_lookup { stage; hit } -> Some (stage, hit)
        | _ -> None)
      events
  in
  let vhdl = Core.Bench_circuits.counter 4 in
  let r_cold, cold = flow_events ~cache_dir:(Some dir) ~jobs:1 vhdl in
  let r_warm, warm = flow_events ~cache_dir:(Some dir) ~jobs:1 vhdl in
  Alcotest.(check bool) "cold run misses" true
    (List.exists (fun (_, hit) -> not hit) (cache_lookups cold));
  let warm_lookups = cache_lookups warm in
  Alcotest.(check bool) "warm run saw lookups" true (warm_lookups <> []);
  List.iter
    (fun (stage, hit) ->
      Alcotest.(check bool) (Printf.sprintf "warm %s hits" stage) true hit)
    warm_lookups;
  (* a hit skips the stage body, so cached stages emit no begin/end on
     the warm run *)
  let warm_begins =
    List.filter_map
      (fun e ->
        match e.Ev.kind with
        | Ev.Stage_begin { stage } -> Some stage
        | _ -> None)
      warm
  in
  List.iter
    (fun (stage, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "warm %s stage body skipped" stage)
        false (List.mem stage warm_begins))
    warm_lookups;
  Alcotest.(check int) "warm result byte-identical (bits)"
    r_cold.Core.Flow.bitstream.Bitstream.Dagger.bits
    r_warm.Core.Flow.bitstream.Bitstream.Dagger.bits

let suite =
  [
    Alcotest.test_case "ring bounds and drop accounting" `Quick
      test_ring_bounds;
    Alcotest.test_case "sequence numbers strictly increase" `Quick
      test_seq_monotone;
    Alcotest.test_case "cross-domain producer/consumer" `Quick
      test_spsc_hammer;
    Alcotest.test_case "ambient sink discipline" `Quick test_ambient;
    Alcotest.test_case "JSON and deterministic views" `Quick test_json;
    Alcotest.test_case "flow streams every stage" `Slow test_flow_stream;
    Alcotest.test_case "event sequence jobs-independent" `Slow
      test_flow_determinism_across_jobs;
    Alcotest.test_case "cache hits replace stage events" `Slow
      test_flow_cache_events;
  ]
