(* Integration tests: the complete VHDL-to-bitstream flow. *)

let test_flow_counter () =
  let r = Core.Flow.run_vhdl (Core.Bench_circuits.counter 8) in
  Alcotest.(check bool) "bitstream verified" true r.Core.Flow.bitstream_verified;
  Alcotest.(check bool) "has clusters" true (r.Core.Flow.n_clusters > 0);
  Alcotest.(check bool) "power positive" true
    (r.Core.Flow.power.Power.Model.total_w > 0.0);
  Alcotest.(check bool) "all stages timed" true
    (List.length r.Core.Flow.times >= 10)

let test_flow_whole_suite () =
  List.iter
    (fun (name, vhdl) ->
      match Core.Flow.run_vhdl vhdl with
      | r ->
          Alcotest.(check bool) (name ^ " verified") true
            r.Core.Flow.bitstream_verified;
          (* the legacy times list is exactly the registry's assoc view *)
          Alcotest.(check bool) (name ^ " times = registry view") true
            (r.Core.Flow.times = Obs.Registry.to_assoc r.Core.Flow.metrics)
      | exception Core.Flow.Flow_error (stage, e) ->
          Alcotest.failf "%s failed at %s: %s" name stage (Printexc.to_string e))
    Core.Bench_circuits.suite

let test_flow_mapped_matches_source () =
  (* the mapped netlist at the end of the front end still behaves like the
     original VHDL: synthesize twice, once straight and once via the flow *)
  let vhdl = Core.Bench_circuits.gray_counter 8 in
  let direct = Synth.Diviner.synthesize vhdl in
  (* the flow's DRUID stage sanitises names (g[0] -> g_0_), so compare the
     reference under the same renaming *)
  let sanitized = Netlist.Edif.to_logic (Netlist.Edif.of_logic direct) in
  let r = Core.Flow.run_vhdl vhdl in
  Alcotest.(check bool) "flow result equivalent to direct synthesis" true
    (Techmap.Simcheck.is_equivalent sanitized r.Core.Flow.mapped)

let test_flow_error_reporting () =
  match Core.Flow.run_vhdl "entity broken" with
  | exception Core.Flow.Flow_error ("vhdl-parser", _) -> ()
  | exception e -> Alcotest.failf "wrong error: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected a parse failure"

let test_flow_nondefault_architecture () =
  let params =
    Fpga_arch.Params.validate
      {
        Fpga_arch.Params.amdrel with
        Fpga_arch.Params.n = 4;
        i = Fpga_arch.Params.recommended_inputs ~k:4 ~n:4;
        segment_length = 2;
      }
  in
  let config = { Core.Flow.default_config with Core.Flow.params } in
  let r = Core.Flow.run_vhdl ~config (Core.Bench_circuits.lfsr 12) in
  Alcotest.(check bool) "verified on N=4/seg2" true r.Core.Flow.bitstream_verified

let test_flow_timing_driven () =
  let config = { Core.Flow.default_config with Core.Flow.timing_driven = true } in
  let r = Core.Flow.run_vhdl ~config (Core.Bench_circuits.alu 8) in
  Alcotest.(check bool) "td flow verified" true
    (r.Core.Flow.bitstream_verified && r.Core.Flow.fabric_verified)

let test_td_criticalities_bounded () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.accumulator 12) in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  let pl = Place.Placement.initial problem in
  let graph = Sta.Graph.build problem in
  let a =
    Sta.Analysis.to_td
      (Sta.Analysis.run graph
         (Sta.Delays.of_placement problem
            ~coords:(Place.Placement.coords pl)))
  in
  Alcotest.(check bool) "dmax positive" true (a.Place.Td_timing.dmax > 0.0);
  Array.iter
    (Array.iter (fun c ->
         Alcotest.(check bool) "crit in [0,1]" true (c >= 0.0 && c <= 1.0)))
    a.Place.Td_timing.criticality;
  (* at least one connection is fully critical *)
  Alcotest.(check bool) "a critical connection exists" true
    (Array.exists (Array.exists (fun c -> c > 0.9)) a.Place.Td_timing.criticality)

let test_td_placement_reports_dmax () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.counter 8) in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  (* the annealer's timing hook, as the flow wires it: unified STA on a
     shared graph, adapted to the Td record *)
  let graph = Sta.Graph.build problem in
  let analyze ~coords =
    Sta.Analysis.to_td
      (Sta.Analysis.run graph (Sta.Delays.of_placement problem ~coords))
  in
  let r =
    Place.Anneal.run ~timing:(Place.Anneal.default_timing ~analyze ()) problem
  in
  (match r.Place.Anneal.estimated_dmax with
  | Some d -> Alcotest.(check bool) "dmax sane" true (d > 0.0 && d < 100e-9)
  | None -> Alcotest.fail "expected a dmax estimate");
  Alcotest.(check bool) "still legal" true
    (Place.Placement.legal r.Place.Anneal.placement)

let test_flow_deterministic () =
  let run () = Core.Flow.run_vhdl (Core.Bench_circuits.counter 8) in
  let a = run () and b = run () in
  Alcotest.(check string) "same bitstream" a.Core.Flow.bitstream.Bitstream.Dagger.bytes
    b.Core.Flow.bitstream.Bitstream.Dagger.bytes

(* The whole flow at jobs=1 and jobs=4 (with multi-start placement, so
   every parallel site is exercised) must agree byte for byte: same
   minimum width, same placement cost, same bitstream. *)
let test_flow_jobs_deterministic () =
  let run jobs =
    Core.Flow.run_vhdl
      ~config:
        { Core.Flow.default_config with Core.Flow.jobs = Some jobs;
          place_starts = 3; timing_driven = true }
      (Core.Bench_circuits.counter 8)
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check (option int)) "same min width"
    a.Core.Flow.route_stats.Route.Router.minimum_width
    b.Core.Flow.route_stats.Route.Router.minimum_width;
  Alcotest.(check (float 0.0)) "same placement cost"
    a.Core.Flow.placement_cost b.Core.Flow.placement_cost;
  Alcotest.(check string) "same bitstream"
    a.Core.Flow.bitstream.Bitstream.Dagger.bytes
    b.Core.Flow.bitstream.Bitstream.Dagger.bytes;
  (* the observability surface carries the pool metrics *)
  Alcotest.(check bool) "parallel.jobs recorded" true
    (List.mem_assoc "parallel.jobs" a.Core.Flow.times
    && List.mem_assoc "parallel.speedup" a.Core.Flow.times);
  Alcotest.(check (float 0.0)) "parallel.jobs value" 4.0
    (List.assoc "parallel.jobs" b.Core.Flow.times)

(* Intra-route parallelism end to end on the larger circuits: the whole
   flow (min-width search, routing, bitstream) must agree byte for byte
   between jobs=1 and jobs=4, and the route.par.* counters must ride in
   the observability surface. *)
let flow_intra_route_jobs_identical vhdl () =
  let run jobs =
    Core.Flow.run_vhdl
      ~config:{ Core.Flow.default_config with Core.Flow.jobs = Some jobs }
      vhdl
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check (option int)) "same min width"
    a.Core.Flow.route_stats.Route.Router.minimum_width
    b.Core.Flow.route_stats.Route.Router.minimum_width;
  Alcotest.(check bool) "identical route trees" true
    (a.Core.Flow.routed.Route.Router.result.Route.Pathfinder.trees
    = b.Core.Flow.routed.Route.Router.result.Route.Pathfinder.trees);
  Alcotest.(check string) "same bitstream"
    a.Core.Flow.bitstream.Bitstream.Dagger.bytes
    b.Core.Flow.bitstream.Bitstream.Dagger.bytes;
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " recorded") true
        (List.mem_assoc c a.Core.Flow.times))
    [ "route.par.batches"; "route.par.batch-max"; "route.par.serial-frac" ];
  Alcotest.(check bool) "batches counted" true
    (List.assoc "route.par.batches" a.Core.Flow.times >= 1.0);
  Alcotest.(check (float 0.0)) "same batch count"
    (List.assoc "route.par.batches" a.Core.Flow.times)
    (List.assoc "route.par.batches" b.Core.Flow.times)

let suite =
  [
    ("flow counter", `Quick, test_flow_counter);
    ("flow whole suite", `Slow, test_flow_whole_suite);
    ("flow equivalence", `Quick, test_flow_mapped_matches_source);
    ("flow error reporting", `Quick, test_flow_error_reporting);
    ("flow non-default architecture", `Quick, test_flow_nondefault_architecture);
    ("flow timing-driven", `Quick, test_flow_timing_driven);
    ("td criticalities bounded", `Quick, test_td_criticalities_bounded);
    ("td placement reports dmax", `Quick, test_td_placement_reports_dmax);
    ("flow deterministic", `Quick, test_flow_deterministic);
    ("flow jobs-deterministic", `Quick, test_flow_jobs_deterministic);
    ( "flow intra-route jobs identical (mult12)",
      `Slow,
      flow_intra_route_jobs_identical (Core.Bench_circuits.multiplier 12) );
    ( "flow intra-route jobs identical (alu16)",
      `Slow,
      flow_intra_route_jobs_identical (Core.Bench_circuits.alu 16) );
  ]
