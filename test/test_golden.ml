(* Golden STA fixtures: the unified engine's full timing report, pinned
   byte for byte (modulo float tolerance) for five suite circuits.

   The fixtures are the independent reference that let the legacy
   standalone estimators retire: any change to the STA engine, the delay
   providers or the report shape shows up here as a diff against a
   recorded known-good run.

   Regenerate a fixture only for an intended change, with the CLI the
   fixtures were recorded with:

     dune exec bin/bcgen.exe -- counter8 > /tmp/counter8.vhd
     dune exec bin/amdrel_flow.exe -- /tmp/counter8.vhd -d /tmp/out \
       --timing-report
     cp /tmp/out/counter8.timing.json test/fixtures/

   (default seed 1, min-width search, timing-driven — the same config
   this test uses).

   The *.seg124.timing.json fixtures pin the same circuits on a
   mixed-length 1xL1+1xL2+1xL4 segmented fabric; regenerate with:

     dune exec bin/dutys.exe -- -o /tmp/seg124.arch \
       --segments "1xL1+1xL2+1xL4"
     dune exec bin/amdrel_flow.exe -- /tmp/counter8.vhd -d /tmp/out \
       --arch /tmp/seg124.arch --timing-report
     cp /tmp/out/counter8.timing.json \
       test/fixtures/counter8.seg124.timing.json *)

let circuits = [ "counter8"; "lfsr12"; "parity16"; "mult4"; "gray8" ]

let seg_mix = "1xL1+1xL2+1xL4"
let seg_circuits = [ "counter8"; "mult4" ]

(* Token-wise comparison: numbers match within a relative tolerance
   (absorbing libm differences across platforms), everything else must
   be byte-identical. *)
let is_num_char c =
  (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+'
  || c = '-'

let num_start s i =
  i < String.length s
  &&
  let c = s.[i] in
  (c >= '0' && c <= '9')
  || (c = '-' && i + 1 < String.length s && s.[i + 1] >= '0' && s.[i + 1] <= '9')

let scan_number s i =
  let n = String.length s in
  let j = ref i in
  while !j < n && is_num_char s.[!j] do
    incr j
  done;
  (float_of_string (String.sub s i (!j - i)), !j)

let compare_tolerant ?(tol = 1e-6) expected actual =
  let ne = String.length expected and na = String.length actual in
  let rec go i j =
    if i >= ne && j >= na then Ok ()
    else if i >= ne || j >= na then
      Error
        (Printf.sprintf "length mismatch (expected %d bytes, got %d)" ne na)
    else if num_start expected i && num_start actual j then begin
      let ve, i' = scan_number expected i in
      let va, j' = scan_number actual j in
      let diff = Float.abs (ve -. va) in
      let scale = Float.max (Float.abs ve) (Float.abs va) in
      if diff <= 1e-15 || diff <= tol *. scale then go i' j'
      else
        Error
          (Printf.sprintf "number %.9g <> %.9g at fixture byte %d" ve va i)
    end
    else if expected.[i] = actual.[j] then go (i + 1) (j + 1)
    else
      Error
        (Printf.sprintf "byte %d: expected %C, got %C" i expected.[i]
           actual.[j])
  in
  go 0 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_and_compare name ~params ~fixture =
  let vhdl =
    match List.assoc_opt name Core.Bench_circuits.suite with
    | Some v -> v
    | None -> Alcotest.failf "%s is not in the bench suite" name
  in
  let config =
    {
      Core.Flow.default_config with
      Core.Flow.params;
      Core.Flow.timing_driven = true;
    }
  in
  let r = Core.Flow.run_vhdl ~config vhdl in
  let actual = Core.Flow.timing_report_json ~design:name r in
  let path = Filename.concat "fixtures" fixture in
  let expected =
    try read_file path
    with Sys_error e ->
      Alcotest.failf "missing golden fixture %s (%s) — see the header of \
                      test_golden.ml to record one" path e
  in
  match compare_tolerant expected actual with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf
        "%s drifts from its golden fixture: %s\n\
         If the change is intended, regenerate the fixture (header of \
         test_golden.ml)." name msg

let test_golden name () =
  run_and_compare name ~params:Fpga_arch.Params.amdrel
    ~fixture:(name ^ ".timing.json")

(* the same circuits on the mixed-length segmented fabric: pins the
   per-segment-type RC path through the STA engine *)
let test_golden_seg name () =
  let params =
    Fpga_arch.Params.validate
      {
        Fpga_arch.Params.amdrel with
        Fpga_arch.Params.segments = Fpga_arch.Params.segments_of_string seg_mix;
      }
  in
  run_and_compare name ~params ~fixture:(name ^ ".seg124.timing.json")

let suite =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " timing report matches fixture") `Slow
        (test_golden name))
    circuits
  @ List.map
      (fun name ->
        Alcotest.test_case
          (name ^ " segmented timing report matches fixture")
          `Slow (test_golden_seg name))
      seg_circuits
