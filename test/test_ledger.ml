(* Run ledger: record JSON roundtrip, append/read with malformed-line
   tolerance, of_result field mapping from a real flow, and the
   amdrel_report regression gate end to end (pass on identical records,
   fail on an injected Wmin regression). *)

module L = Ledger
module E = Obs.Emit

let mk ?(design = "counter4") ?(wmin = Some 12) ?(crit_s = 4.2e-9)
    ?(power_w = 1.3e-3) ?(wns_s = -0.4e-9) ?(at = "2026-01-01T00:00:00Z") () :
    L.t =
  {
    L.suite = "t";
    design;
    design_hash = "d41d8cd98f00b204e9800998ecf8427e";
    params_fp = "aaaa";
    mix = "2xL1+1xL4";
    seed = 1;
    jobs = 2;
    git = "abc1234";
    at;
    luts = 9;
    clbs = 3;
    width = 14;
    wmin;
    crit_s;
    wns_s;
    tns_s = -1.1e-9;
    power_w;
    bits = 512;
    stage_wall = [ ("vpr-place", 0.12); ("vpr-route", 0.34) ];
    stage_cpu = [ ("vpr-place", 0.11); ("vpr-route", 0.31) ];
    cache_hits = 0;
    cache_misses = 7;
    cache_stores = 7;
  }

let json_eq = Alcotest.testable (Fmt.of_to_string E.to_string) ( = )

let test_roundtrip () =
  let check r =
    match L.of_json (L.to_json r) with
    | Ok r' ->
        Alcotest.check json_eq "roundtrip preserves the record"
          (L.to_json r) (L.to_json r')
    | Error e -> Alcotest.failf "of_json failed: %s" e
  in
  check (mk ());
  check (mk ~wmin:None ());
  (* wmin null survives *)
  match L.of_json (L.to_json (mk ~wmin:None ())) with
  | Ok r -> Alcotest.(check (option int)) "wmin None" None r.L.wmin
  | Error e -> Alcotest.failf "of_json failed: %s" e

let test_of_json_rejects () =
  List.iter
    (fun (label, json) ->
      match L.of_json json with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should be rejected" label)
    [
      ("empty object", E.Obj []);
      ("non-object", E.String "x");
      ( "missing seed",
        match L.to_json (mk ()) with
        | E.Obj kvs -> E.Obj (List.remove_assoc "seed" kvs)
        | j -> j );
      ( "wmin wrong type",
        match L.to_json (mk ()) with
        | E.Obj kvs ->
            E.Obj
              (List.map
                 (fun (k, v) ->
                   if k = "wmin" then (k, E.String "twelve") else (k, v))
                 kvs)
        | j -> j );
    ]

let temp_dir tag =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "amdrel_ledger_%s_%d" tag (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let test_append_read () =
  let dir = temp_dir "rw" in
  let file = L.path ~dir ~suite:"t" in
  if Sys.file_exists file then Sys.remove file;
  Alcotest.(check (pair int int)) "missing file reads empty" (0, 0)
    (let rs, sk = L.read ~dir ~suite:"t" in
     (List.length rs, sk));
  L.append ~dir (mk ());
  (* alien and malformed lines are skipped, not fatal: the ledger is
     shared and append-only, so one bad writer must not poison it *)
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "not json at all\n{\"suite\": 3}\n";
  close_out oc;
  L.append ~dir (mk ~design:"mult4" ());
  let records, skipped = L.read ~dir ~suite:"t" in
  Alcotest.(check int) "two good records" 2 (List.length records);
  Alcotest.(check int) "two bad lines skipped" 2 skipped;
  Alcotest.(check (list string)) "file order preserved"
    [ "counter4"; "mult4" ]
    (List.map (fun (r : L.t) -> r.L.design) records)

let test_of_result () =
  let vhdl = Core.Bench_circuits.counter 4 in
  let r = Core.Flow.run_vhdl vhdl in
  let rec_ =
    L.of_result ~suite:"s" ~config:Core.Flow.default_config ~source:vhdl r
  in
  Alcotest.(check string) "design name" r.Core.Flow.design rec_.L.design;
  Alcotest.(check string) "design hash is MD5 of the source"
    (Digest.to_hex (Digest.string vhdl))
    rec_.L.design_hash;
  Alcotest.(check (option int)) "wmin from the width search"
    r.Core.Flow.route_stats.Route.Router.minimum_width rec_.L.wmin;
  Alcotest.(check int) "bits" r.Core.Flow.bitstream.Bitstream.Dagger.bits
    rec_.L.bits;
  Alcotest.(check bool) "stage wall timers present" true
    (List.mem_assoc "vpr-route" rec_.L.stage_wall);
  Alcotest.(check bool) "no dotted sub-stage timers" true
    (List.for_all
       (fun (k, _) -> not (String.contains k '.'))
       rec_.L.stage_wall)

(* ---------- the report gate, end to end ---------- *)

let report_exe = Filename.concat ".." (Filename.concat "bin" "amdrel_report.exe")

let run_report ~dir ~out =
  Sys.command
    (Printf.sprintf "%s --ledger %s --suite t -o %s --quiet 2>/dev/null"
       (Filename.quote report_exe) (Filename.quote dir) (Filename.quote out))

let test_gate_pass_and_fail () =
  if not (Sys.file_exists report_exe) then
    Alcotest.skip ()
  else begin
    let dir = temp_dir "gate" in
    let file = L.path ~dir ~suite:"t" in
    if Sys.file_exists file then Sys.remove file;
    let out = Filename.concat dir "BENCH_t.json" in
    (* two identical runs: the gate passes *)
    L.append ~dir (mk ~at:"2026-01-01T00:00:00Z" ());
    L.append ~dir (mk ~at:"2026-01-02T00:00:00Z" ());
    Alcotest.(check int) "identical runs pass the gate" 0
      (run_report ~dir ~out);
    Alcotest.(check bool) "BENCH json written" true (Sys.file_exists out);
    let bench = Obs.Jsonin.parse (In_channel.with_open_text out In_channel.input_all) in
    (match Option.bind (Obs.Jsonin.member "gate" bench) (Obs.Jsonin.member "ok") with
    | Some (E.Bool ok) -> Alcotest.(check bool) "gate.ok recorded" true ok
    | _ -> Alcotest.fail "gate.ok missing from BENCH json");
    (* inject a Wmin regression (12 -> 14, far past 2% tolerance) *)
    L.append ~dir (mk ~at:"2026-01-03T00:00:00Z" ~wmin:(Some 14) ());
    Alcotest.(check int) "Wmin regression fails the gate" 1
      (run_report ~dir ~out);
    (* a non-comparable record (different seed fingerprint) never gates
       against the regressed one: doctor params_fp via a fresh design *)
    let bench = Obs.Jsonin.parse (In_channel.with_open_text out In_channel.input_all) in
    match
      Option.bind (Obs.Jsonin.member "gate" bench)
        (Obs.Jsonin.member "regressions")
    with
    | Some (E.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "regression detail missing from BENCH json"
  end

let suite =
  [
    Alcotest.test_case "record JSON roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "of_json rejects malformed records" `Quick
      test_of_json_rejects;
    Alcotest.test_case "append/read skips alien lines" `Quick
      test_append_read;
    Alcotest.test_case "of_result maps the flow result" `Slow test_of_result;
    Alcotest.test_case "report gate passes then fails on regression" `Quick
      test_gate_pass_and_fail;
  ]
