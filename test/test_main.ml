let () =
  Alcotest.run "amdrel"
    [
      ("util", Test_util.suite);
      ("spice", Test_spice.suite);
      ("netlist", Test_netlist.suite);
      ("synth", Test_synth.suite);
      ("techmap", Test_techmap.suite);
      ("backend", Test_backend.suite);
      ("route", Test_route.suite);
      ("segments", Test_segments.suite);
      ("tools", Test_tools.suite);
      ("properties", Test_properties.suite);
      ("sta", Test_sta.suite);
      ("golden", Test_golden.suite);
      ("obs", Test_obs.suite);
      ("events", Test_events.suite);
      ("ledger", Test_ledger.suite);
      ("cache", Test_cache.suite);
      ("service", Test_service.suite);
      ("flow", Test_flow.suite);
    ]
