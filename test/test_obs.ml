(* lib/obs: the shared JSON emitter, the typed metric registry (with its
   deterministic cross-domain merge) and the span tracer / Chrome
   trace-event export. *)

(* ---------- Emit ---------- *)

let test_emit_structure () =
  let open Obs.Emit in
  Alcotest.(check string) "scalars and separators"
    {|{"a": 1, "b": [true, null, "x"], "c": 0.5}|}
    (to_string
       (Obj
          [
            ("a", Int 1);
            ("b", List [ Bool true; Null; String "x" ]);
            ("c", Float 0.5);
          ]));
  Alcotest.(check string) "empty containers" {|{"a": [], "b": {}}|}
    (to_string (Obj [ ("a", List []); ("b", Obj []) ]))

let test_emit_escaping () =
  let open Obs.Emit in
  Alcotest.(check string) "quote backslash newline" "\"a\\\"b\\\\c\\nd\""
    (to_string (String "a\"b\\c\nd"));
  Alcotest.(check string) "control characters as \\uXXXX" "\"x\\u0001y\""
    (to_string (String "x\001y"))

let test_emit_floats () =
  let open Obs.Emit in
  Alcotest.(check string) "%.9g float" "1.25" (to_string (Float 1.25));
  Alcotest.(check string) "nan renders null" "null" (to_string (Float nan));
  Alcotest.(check string) "inf renders null" "null"
    (to_string (Float infinity))

(* ---------- Registry basics ---------- *)

let test_registry_kinds () =
  let module R = Obs.Registry in
  let r = R.create () in
  R.incr r "c";
  R.incr ~by:4 r "c";
  R.set r "g" 1.0;
  R.set r "g" 2.5;
  R.add_time r "t" ~wall_s:0.5 ~cpu_s:0.25;
  R.add_time r "t" ~wall_s:0.5 ~cpu_s:0.25;
  R.observe r "h" 3.0;
  let s = R.snapshot r in
  Alcotest.(check bool) "counter sums" true (R.find s "c" = Some (R.Counter 5));
  Alcotest.(check bool) "gauge last write" true
    (R.find s "g" = Some (R.Gauge 2.5));
  (match R.find s "t" with
  | Some (R.Timer { wall_s; cpu_s; intervals }) ->
      Alcotest.(check (float 1e-12)) "timer wall" 1.0 wall_s;
      Alcotest.(check (float 1e-12)) "timer cpu" 0.5 cpu_s;
      Alcotest.(check int) "timer intervals" 2 intervals
  | _ -> Alcotest.fail "timer missing");
  (* snapshot order is the creating domain's first-record order *)
  Alcotest.(check (list string)) "snapshot order" [ "c"; "g"; "t"; "h" ]
    (List.map (fun (e : R.entry) -> e.R.key) s);
  (* the legacy assoc view: counter/gauge as floats, timer cpu + .wall,
     histogram omitted *)
  Alcotest.(check bool) "to_assoc view" true
    (R.to_assoc s
    = [ ("c", 5.0); ("g", 2.5); ("t", 0.5); ("t.wall", 1.0) ])

let test_registry_kind_conflict () =
  let module R = Obs.Registry in
  let r = R.create () in
  R.incr r "k";
  match R.observe r "k" 1.0 with
  | () -> Alcotest.fail "expected Invalid_argument on kind conflict"
  | exception Invalid_argument _ -> ()

let test_registry_time_records () =
  let module R = Obs.Registry in
  let r = R.create () in
  let v = R.time r "work" (fun () -> 42) in
  Alcotest.(check int) "result passed through" 42 v;
  (match R.find (R.snapshot r) "work" with
  | Some (R.Timer { intervals; wall_s; _ }) ->
      Alcotest.(check int) "one interval" 1 intervals;
      Alcotest.(check bool) "wall non-negative" true (wall_s >= 0.0)
  | _ -> Alcotest.fail "timer missing");
  (* nothing recorded when f raises *)
  (try R.time r "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check bool) "no record on raise" true
    (R.find (R.snapshot r) "boom" = None)

(* ---------- Histogram properties ---------- *)

(* Samples derived from small ints (including negatives and zero) so
   exact float equality on min/max is sound. *)
let samples_arb = QCheck.(list_of_size (Gen.int_range 1 200) (int_range (-50) 1000))

let prop_hist_invariants =
  QCheck.Test.make ~count:300 ~name:"histogram count/min/max exact, percentiles ordered"
    samples_arb (fun xs ->
      QCheck.assume (xs <> []);
      let module R = Obs.Registry in
      let r = R.create () in
      List.iter (fun x -> R.observe r "h" (float_of_int x)) xs;
      match R.find (R.snapshot r) "h" with
      | Some (R.Histogram { count; min; max; p50; p90 }) ->
          let fx = List.map float_of_int xs in
          count = List.length xs
          && min = List.fold_left Float.min (List.hd fx) fx
          && max = List.fold_left Float.max (List.hd fx) fx
          && min <= p50 && p50 <= p90 && p90 <= max
      | _ -> false)

let prop_hist_order_insensitive =
  QCheck.Test.make ~count:200
    ~name:"histogram merge is order-insensitive (deterministic JSON)"
    samples_arb (fun xs ->
      let module R = Obs.Registry in
      let json order =
        let r = R.create () in
        List.iter (fun x -> R.observe r "h" (float_of_int x)) order;
        List.iter (fun x -> R.incr ~by:x r "c") order;
        Obs.Emit.to_string (R.to_json ~deterministic:true (R.snapshot r))
      in
      let a = json xs in
      a = json (List.rev xs) && a = json (List.sort compare xs))

(* Histogram edge cases around the percentile walk: a single sample and
   an all-one-bucket population must report exact percentiles (the
   bucket upper bound clamps into [min, max]), and a count-zero snapshot
   must serialise to finite numbers, never NaN. *)
let test_hist_edge_cases () =
  let module R = Obs.Registry in
  (* one sample: every percentile is that sample, exactly *)
  let r = R.create () in
  R.observe r "one" 0.3;
  (match R.find (R.snapshot r) "one" with
  | Some (R.Histogram { count; min; max; p50; p90 }) ->
      Alcotest.(check int) "count" 1 count;
      Alcotest.(check (float 0.0)) "min" 0.3 min;
      Alcotest.(check (float 0.0)) "max" 0.3 max;
      Alcotest.(check (float 0.0)) "p50 = the sample" 0.3 p50;
      Alcotest.(check (float 0.0)) "p90 = the sample" 0.3 p90
  | _ -> Alcotest.fail "histogram missing");
  (* several samples in one log2 bucket: percentiles clamp to max *)
  let r = R.create () in
  List.iter (R.observe r "bucket") [ 5.0; 6.0; 7.5 ];
  (match R.find (R.snapshot r) "bucket" with
  | Some (R.Histogram { count; min; max; p50; p90 }) ->
      Alcotest.(check int) "count" 3 count;
      Alcotest.(check (float 0.0)) "min" 5.0 min;
      Alcotest.(check (float 0.0)) "p50 clamps to max" 7.5 p50;
      Alcotest.(check (float 0.0)) "p90 clamps to max" 7.5 p90;
      Alcotest.(check (float 0.0)) "max" 7.5 max
  | _ -> Alcotest.fail "histogram missing");
  (* non-positive samples land in the <= 0 bucket, whose bound is 0 *)
  let r = R.create () in
  List.iter (R.observe r "nonpos") [ -3.0; 0.0 ];
  (match R.find (R.snapshot r) "nonpos" with
  | Some (R.Histogram { min; max; p50; p90; _ }) ->
      Alcotest.(check (float 0.0)) "min" (-3.0) min;
      Alcotest.(check (float 0.0)) "p50 finite" 0.0 p50;
      Alcotest.(check (float 0.0)) "p90 finite" 0.0 p90;
      Alcotest.(check (float 0.0)) "max" 0.0 max
  | _ -> Alcotest.fail "histogram missing");
  (* a count-zero histogram is unreachable through observe, but the
     serialiser must still render one (e.g. from a future merge of
     empty shards) without NaN *)
  let synthetic =
    [
      {
        R.key = "empty";
        value = R.Histogram { count = 0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0 };
        volatile = false;
      };
    ]
  in
  let json = Obs.Emit.to_string (R.to_json ~deterministic:true synthetic) in
  Alcotest.(check bool) "no NaN in empty-histogram JSON" false
    (let lower = String.lowercase_ascii json in
     let n = String.length lower in
     let rec scan i = i + 3 <= n && (String.sub lower i 3 = "nan" || scan (i + 1)) in
     scan 0)

(* ---------- Cross-domain merge determinism ---------- *)

let test_merge_across_domains () =
  let module R = Obs.Registry in
  (* 8 chunks of records; a sequential registry vs one filled from a
     4-domain pool must render identically (deterministic view). *)
  let chunks = Array.init 8 (fun i -> List.init 25 (fun j -> (i * 25) + j)) in
  let record r chunk =
    List.iter
      (fun v ->
        R.incr r "events";
        R.observe r "dist" (float_of_int v))
      chunk
  in
  let seq = R.create () in
  Array.iter (record seq) chunks;
  let par = R.create () in
  ignore (Util.Parallel.map ~jobs:4 (record par) chunks);
  let render r =
    Obs.Emit.to_string (R.to_json ~deterministic:true (R.snapshot r))
  in
  Alcotest.(check string) "sequential = 4-domain merge" (render seq)
    (render par);
  match R.find (R.snapshot par) "events" with
  | Some (R.Counter n) -> Alcotest.(check int) "all records merged" 200 n
  | _ -> Alcotest.fail "counter missing"

(* ---------- Span tracing ---------- *)

let test_span_nesting () =
  let tr = Obs.Span.create () in
  Obs.Span.with_trace tr (fun () ->
      Alcotest.(check bool) "trace ambient" true (Obs.Span.active ());
      Obs.Span.with_ ~name:"a" (fun () ->
          Obs.Span.with_ ~name:"b" (fun () -> ());
          Obs.Span.with_ ~name:"c" (fun () -> Obs.Span.annotate [ ("k", Obs.Emit.Int 7) ])));
  Alcotest.(check bool) "no trace ambient after" false (Obs.Span.active ());
  match Obs.Span.roots tr with
  | [ a ] ->
      Alcotest.(check string) "root name" "a" a.Obs.Span.name;
      Alcotest.(check (list string)) "children in order" [ "b"; "c" ]
        (List.map (fun (s : Obs.Span.span) -> s.Obs.Span.name)
           a.Obs.Span.children);
      List.iter
        (fun (s : Obs.Span.span) ->
          Alcotest.(check bool) "duration non-negative" true
            (s.Obs.Span.t1_us >= s.Obs.Span.t0_us);
          Alcotest.(check bool) "child inside parent" true
            (s.Obs.Span.t0_us >= a.Obs.Span.t0_us
            && s.Obs.Span.t1_us <= a.Obs.Span.t1_us))
        a.Obs.Span.children;
      let c = List.nth a.Obs.Span.children 1 in
      Alcotest.(check bool) "annotation attached" true
        (List.mem_assoc "k" c.Obs.Span.args)
  | rs -> Alcotest.failf "expected one root, got %d" (List.length rs)

let test_span_noop_without_trace () =
  Alcotest.(check int) "with_ is f () without ambient trace" 9
    (Obs.Span.with_ ~name:"free" (fun () -> 9))

(* ---------- Mini JSON parser (for validating exported trace files) --- *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else failwith (Printf.sprintf "expected %c at %d" c !pos)
  in
  let lit l v =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l
    then (pos := !pos + String.length l; v)
    else failwith "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          (match s.[!pos] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              Buffer.add_char b (Char.chr (code land 0xff))
          | c -> Buffer.add_char b c);
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; Jobj [])
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; fields ((k, v) :: acc)
            | Some '}' -> incr pos; List.rev ((k, v) :: acc)
            | _ -> failwith "bad object"
          in
          Jobj (fields [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; Jarr [])
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elems (v :: acc)
            | Some ']' -> incr pos; List.rev (v :: acc)
            | _ -> failwith "bad array"
          in
          Jarr (elems [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> lit "true" (Jbool true)
    | Some 'f' -> lit "false" (Jbool false)
    | Some 'n' -> lit "null" Jnull
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr pos
        done;
        Jnum (float_of_string (String.sub s start (!pos - start)))
    | None -> failwith "eof"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then failwith "trailing garbage";
  v

let obj_field o k =
  match o with
  | Jobj fs -> (try Some (List.assoc k fs) with Not_found -> None)
  | _ -> None

(* Walk the traceEvents array: strict B/E stack discipline (every E
   closes the most recent open B with the same name, at a later or
   equal timestamp) and the stack is empty at the end. *)
let check_chrome_events events =
  let stack = ref [] in
  List.iter
    (fun ev ->
      let name =
        match obj_field ev "name" with Some (Jstr s) -> s | _ -> Alcotest.fail "event missing name"
      in
      let ts =
        match obj_field ev "ts" with Some (Jnum t) -> t | _ -> Alcotest.fail "event missing ts"
      in
      Alcotest.(check bool) "ts non-negative" true (ts >= 0.0);
      match obj_field ev "ph" with
      | Some (Jstr "B") -> stack := (name, ts) :: !stack
      | Some (Jstr "E") -> (
          match !stack with
          | (bname, bts) :: rest ->
              Alcotest.(check string) "E closes most recent B" bname name;
              Alcotest.(check bool) "E after its B" true (ts >= bts);
              stack := rest
          | [] -> Alcotest.fail "E without open B")
      | _ -> Alcotest.fail "event ph must be B or E")
    events;
  Alcotest.(check int) "all spans closed" 0 (List.length !stack)

let test_chrome_export () =
  let tr = Obs.Span.create () in
  Obs.Span.with_trace tr (fun () ->
      Obs.Span.with_ ~name:"outer" ~args:[ ("design", Obs.Emit.String "t\"x") ]
        (fun () ->
          Obs.Span.with_ ~name:"inner1" (fun () -> ());
          Obs.Span.with_ ~name:"inner2" (fun () -> ())));
  let j = parse_json (Obs.Span.to_chrome_string tr) in
  (match obj_field j "displayTimeUnit" with
  | Some (Jstr "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit");
  match obj_field j "traceEvents" with
  | Some (Jarr events) ->
      Alcotest.(check int) "3 spans = 6 events" 6 (List.length events);
      check_chrome_events events
  | _ -> Alcotest.fail "traceEvents missing"

(* ---------- Flow integration ---------- *)

(* A small circuit run under a trace: the contractual span sites (flow
   stages, PathFinder iterations, annealer temperature steps, STA level
   sweeps) must all appear, properly nested in the Chrome export. *)
let test_flow_trace () =
  let tr = Obs.Span.create () in
  let r =
    Obs.Span.with_trace tr (fun () ->
        Core.Flow.run_vhdl (Core.Bench_circuits.counter 8))
  in
  Alcotest.(check bool) "flow verified under trace" true
    r.Core.Flow.bitstream_verified;
  let names = ref [] in
  let rec walk (s : Obs.Span.span) =
    names := s.Obs.Span.name :: !names;
    List.iter walk s.Obs.Span.children
  in
  List.iter walk (Obs.Span.roots tr);
  List.iter
    (fun want ->
      Alcotest.(check bool) (want ^ " span present") true
        (List.mem want !names))
    [
      "flow"; "vhdl-parser"; "diviner-synth"; "vpr-place"; "vpr-route";
      "route.iteration"; "route.batch"; "place.temperature"; "sta.forward";
      "sta.backward"; "sta.level";
    ];
  (* and the export obeys the Chrome B/E discipline end to end *)
  match obj_field (parse_json (Obs.Span.to_chrome_string tr)) "traceEvents" with
  | Some (Jarr events) ->
      Alcotest.(check bool) "plenty of events" true (List.length events > 50);
      check_chrome_events events
  | _ -> Alcotest.fail "traceEvents missing"

(* The metric registry at jobs=1 and jobs=4 on a full mult12 flow:
   the deterministic JSON view must be byte-identical, and the legacy
   times list must be exactly the registry's assoc view. *)
let test_flow_metrics_jobs_identical () =
  let run jobs =
    Core.Flow.run_vhdl
      ~config:{ Core.Flow.default_config with Core.Flow.jobs = Some jobs }
      (Core.Bench_circuits.multiplier 12)
  in
  let a = run 1 and b = run 4 in
  let render (r : Core.Flow.result) =
    Obs.Emit.to_string
      (Obs.Registry.to_json ~deterministic:true r.Core.Flow.metrics)
  in
  Alcotest.(check string) "metrics byte-identical at jobs=1 vs jobs=4"
    (render a) (render b);
  Alcotest.(check bool) "times = registry assoc view" true
    (a.Core.Flow.times = Obs.Registry.to_assoc a.Core.Flow.metrics);
  (* the contractual histogram keys exist with sane shapes *)
  List.iter
    (fun key ->
      match Obs.Registry.find a.Core.Flow.metrics key with
      | Some (Obs.Registry.Histogram { count; min; max; p50; p90 }) ->
          Alcotest.(check bool) (key ^ " populated") true (count > 0);
          Alcotest.(check bool) (key ^ " ordered") true
            (min <= p50 && p50 <= p90 && p90 <= max)
      | _ -> Alcotest.failf "%s histogram missing" key)
    [
      "route.net-heap-pops"; "route.iter-overuse"; "place.accept-rate";
      "sta.level-nodes";
    ]

(* The long-running-process guarantee the compile service leans on:
   two back-to-back runs in ONE process, each into a fresh registry,
   produce byte-identical deterministic metric JSON — i.e. identical to
   what two fresh processes would produce.  Nothing recorded by the
   first run (registry state, per-domain buffers, DLS caches) may leak
   into the second. *)
let test_back_to_back_runs_identical () =
  let run () =
    let obs = Obs.Registry.create () in
    let r =
      Core.Flow.run_vhdl
        ~config:{ Core.Flow.default_config with Core.Flow.jobs = Some 2 }
        ~obs
        (Core.Bench_circuits.counter 8)
    in
    Obs.Emit.to_string
      (Obs.Registry.to_json ~deterministic:true r.Core.Flow.metrics)
  in
  let first = run () in
  let second = run () in
  Alcotest.(check string) "second run byte-identical to first" first second

let suite =
  [
    ("emit structure", `Quick, test_emit_structure);
    ("emit escaping", `Quick, test_emit_escaping);
    ("emit floats", `Quick, test_emit_floats);
    ("registry kinds", `Quick, test_registry_kinds);
    ("registry kind conflict", `Quick, test_registry_kind_conflict);
    ("registry time", `Quick, test_registry_time_records);
    QCheck_alcotest.to_alcotest prop_hist_invariants;
    QCheck_alcotest.to_alcotest prop_hist_order_insensitive;
    ("histogram edge cases", `Quick, test_hist_edge_cases);
    ("merge across domains", `Quick, test_merge_across_domains);
    ("span nesting", `Quick, test_span_nesting);
    ("span no-op without trace", `Quick, test_span_noop_without_trace);
    ("chrome export", `Quick, test_chrome_export);
    ("flow trace", `Slow, test_flow_trace);
    ("flow metrics jobs-identical (mult12)", `Slow,
     test_flow_metrics_jobs_identical);
    ("back-to-back runs identical (counter8)", `Slow,
     test_back_to_back_runs_identical);
  ]
