(* Cross-cutting property tests: random circuits pushed through the
   format round-trips and the flow's invariants. *)

open Netlist

(* Random sequential network generator (gates + latches). *)
let random_seq_network rng ~n_inputs ~n_gates ~n_latches =
  let net = Logic.create ~model:"prop" () in
  let pool = ref [] in
  for i = 0 to n_inputs - 1 do
    pool := Logic.add_input net (Printf.sprintf "pi%d" i) :: !pool
  done;
  (* latch placeholders first so gates can read registers *)
  let latch_ids =
    List.init n_latches (fun i -> Logic.add_input net (Printf.sprintf "r%d" i))
  in
  pool := latch_ids @ !pool;
  for g = 0 to n_gates - 1 do
    let arity = 1 + Util.Prng.int rng (min 4 (List.length !pool)) in
    let pool_arr = Array.of_list !pool in
    let fanins = Array.init arity (fun _ -> Util.Prng.pick rng pool_arr) in
    let bits = Util.Prng.int rng (1 lsl (1 lsl arity)) in
    let id =
      Logic.add_gate net (Printf.sprintf "g%d" g) (Tt.create arity bits) fanins
    in
    pool := id :: !pool
  done;
  let pool_arr = Array.of_list !pool in
  (* resolve latches: data from anywhere *)
  List.iter
    (fun l ->
      let data = Util.Prng.pick rng pool_arr in
      Logic.set_driver net l
        (Logic.Latch { data; init = Util.Prng.bool rng }))
    latch_ids;
  for _ = 0 to 3 do
    Logic.set_output net (Util.Prng.pick rng pool_arr)
  done;
  net

let seed_arb = QCheck.int_bound 100000

let prop_blif_roundtrip_random =
  QCheck.Test.make ~count:60 ~name:"BLIF round trip on random networks"
    seed_arb
    (fun seed ->
      let rng = Util.Prng.create (seed + 11) in
      let net = random_seq_network rng ~n_inputs:5 ~n_gates:12 ~n_latches:3 in
      let net2 = Blif.of_string (Blif.to_string net) in
      Techmap.Simcheck.is_equivalent net net2)

let prop_blif_double_roundtrip_stable =
  (* parsing assigns fresh ids in reference order, so statement order can
     permute across a trip; the CONTENT must be a fixed point *)
  QCheck.Test.make ~count:40
    ~name:"BLIF content is a fixed point after one trip" seed_arb
    (fun seed ->
      let rng = Util.Prng.create (seed + 23) in
      let net = random_seq_network rng ~n_inputs:4 ~n_gates:10 ~n_latches:2 in
      let canon text =
        String.split_on_char '\n' text |> List.sort compare
      in
      let once = Blif.to_string (Blif.of_string (Blif.to_string net)) in
      let twice = Blif.to_string (Blif.of_string once) in
      canon once = canon twice)

let prop_netfile_roundtrip_random =
  QCheck.Test.make ~count:40 ~name:"netfile round trip on random packings"
    seed_arb
    (fun seed ->
      let rng = Util.Prng.create (seed + 31) in
      let net = random_seq_network rng ~n_inputs:5 ~n_gates:15 ~n_latches:3 in
      let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
      let p = Pack.Cluster.pack ~n:5 ~i:12 mapped in
      let p2 = Pack.Netfile.of_string mapped (Pack.Netfile.to_string p) in
      Pack.Cluster.check p2
      && Pack.Cluster.ble_count p = Pack.Cluster.ble_count p2)

let prop_fabric_equivalent_random =
  QCheck.Test.make ~count:15 ~name:"fabric emulation equivalent on random circuits"
    seed_arb
    (fun seed ->
      let rng = Util.Prng.create (seed + 41) in
      let net = random_seq_network rng ~n_inputs:5 ~n_gates:15 ~n_latches:3 in
      let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
      let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
      let problem = Place.Problem.build packing in
      let anneal =
        Place.Anneal.run
          ~options:{ Place.Anneal.seed = seed + 1; inner_num = 0.3 }
          problem
      in
      let routed =
        Route.Router.route_min_width Fpga_arch.Params.amdrel
          anneal.Place.Anneal.placement
      in
      let g = Bitstream.Dagger.generate routed in
      Bitstream.Dagger.verify routed g.Bitstream.Dagger.bytes
        = Bitstream.Dagger.Verified
      && Bitstream.Dagger.verify_functional routed g.Bitstream.Dagger.bytes)

let prop_anneal_cost_consistent =
  QCheck.Test.make ~count:20 ~name:"annealer incremental cost = full recount"
    seed_arb
    (fun seed ->
      let rng = Util.Prng.create (seed + 53) in
      let net = random_seq_network rng ~n_inputs:6 ~n_gates:20 ~n_latches:4 in
      let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
      let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
      let problem = Place.Problem.build packing in
      let r =
        Place.Anneal.run
          ~options:{ Place.Anneal.seed = seed + 2; inner_num = 0.5 }
          problem
      in
      (* exact: the exit cost is resummed from per-net costs that are
         bit-identical to net_cost, in total_cost's summation order *)
      Place.Placement.legal r.Place.Anneal.placement
      && Place.Placement.total_cost r.Place.Anneal.placement
         = r.Place.Anneal.final_cost)

(* random mixed-length segment declarations: fc values are picked from
   a set that prints exactly, so text round-trips are byte-faithful *)
let segments_gen =
  QCheck.Gen.(
    list_size (int_range 0 3)
      (map
         (fun (((count, length), (fc_in, fc_out)), metal) ->
           {
             Fpga_arch.Params.s_length = length;
             s_count = count;
             s_fc_in = fc_in;
             s_fc_out = fc_out;
             s_metal = metal;
           })
         (pair
            (pair
               (pair (int_range 1 3) (int_range 1 8))
               (pair
                  (oneofl [ 1.0; 0.5; 0.25; 0.75; 0.125 ])
                  (oneofl [ 1.0; 0.5; 0.25; 0.75; 0.125 ])))
            (oneofl
               [
                 Fpga_arch.Params.Metal_min_min;
                 Fpga_arch.Params.Metal_min_double;
                 Fpga_arch.Params.Metal_double_double;
               ]))))

let prop_archfile_roundtrip =
  QCheck.Test.make ~count:100 ~name:"architecture file round trip"
    QCheck.(
      pair
        (quad (int_range 2 5) (int_range 1 8) (int_range 1 4) (int_range 1 3))
        (make segments_gen))
    (fun ((k, n, seg, io_rat), segments) ->
      let p =
        {
          Fpga_arch.Params.amdrel with
          Fpga_arch.Params.k;
          n;
          i = max k (Fpga_arch.Params.recommended_inputs ~k ~n);
          segment_length = seg;
          segments;
          io_rat;
        }
      in
      match Fpga_arch.Params.validate p with
      | p ->
          Fpga_arch.Archfile.of_string (Fpga_arch.Archfile.to_string p) = p
      | exception Fpga_arch.Params.Invalid_params _ -> true)

let prop_edif_sanitize_idempotent =
  QCheck.Test.make ~count:200 ~name:"EDIF identifier sanitisation idempotent"
    QCheck.(string_of_size (QCheck.Gen.int_range 1 20))
    (fun s ->
      let once = Edif.sanitize_ident s in
      Edif.sanitize_ident once = once)

let prop_qm_matches_greedy_function =
  QCheck.Test.make ~count:200 ~name:"QM and greedy covers compute the same function"
    QCheck.(pair (int_range 1 4) (int_bound 65535))
    (fun (n, bits) ->
      let tt = Tt.create n bits in
      Tt.equal (Qm.cover_function n (Qm.min_cover tt))
        (Tt.of_cubes n (Tt.to_cubes tt)))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_blif_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_blif_double_roundtrip_stable;
    QCheck_alcotest.to_alcotest prop_netfile_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_fabric_equivalent_random;
    QCheck_alcotest.to_alcotest prop_anneal_cost_consistent;
    QCheck_alcotest.to_alcotest prop_archfile_roundtrip;
    QCheck_alcotest.to_alcotest prop_edif_sanitize_idempotent;
    QCheck_alcotest.to_alcotest prop_qm_matches_greedy_function;
  ]
