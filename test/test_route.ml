(* Router property and regression tests: tree invariants on random
   placements, and incremental vs full rip-up agreement. *)

let seed_arb = QCheck.int_bound 100000

let place_random seed =
  let rng = Util.Prng.create (seed + 71) in
  let net =
    Test_properties.random_seq_network rng ~n_inputs:5 ~n_gates:14 ~n_latches:3
  in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  let anneal =
    Place.Anneal.run
      ~options:{ Place.Anneal.seed = seed + 1; inner_num = 0.3 }
      problem
  in
  (problem, anneal.Place.Anneal.placement)

(* Routed trees are acyclic, connect the source to every sink, and the
   final occupancy respects every node's capacity. *)
let prop_routed_trees_valid =
  QCheck.Test.make ~count:10
    ~name:"routing: trees acyclic, connected, within capacity" seed_arb
    (fun seed ->
      let problem, placement = place_random seed in
      let routed =
        Route.Router.route_min_width Fpga_arch.Params.amdrel placement
      in
      let g = routed.Route.Router.graph in
      let nets = Route.Router.net_terminals g problem in
      Route.Pathfinder.no_overuse routed.Route.Router.result
      && Array.for_all
           (fun (spec : Route.Pathfinder.net_spec) ->
             let tr =
               routed.Route.Router.result.Route.Pathfinder.trees.(spec.Route.Pathfinder.index)
             in
             Route.Pathfinder.tree_connects
               ~source:spec.Route.Pathfinder.source
               ~sinks:spec.Route.Pathfinder.sinks tr
             && Route.Pathfinder.tree_acyclic
                  ~source:spec.Route.Pathfinder.source
                  ~sinks:spec.Route.Pathfinder.sinks tr)
           nets)

(* Incremental rip-up (the default) and classic full rip-up must both
   route the bench circuits at the same channel width. *)
let test_incremental_matches_full () =
  List.iter
    (fun (name, vhdl) ->
      let net = Synth.Diviner.synthesize vhdl in
      let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
      let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
      let problem = Place.Problem.build packing in
      let placement =
        (Place.Anneal.run
           ~options:{ Place.Anneal.seed = 1; inner_num = 0.5 }
           problem)
          .Place.Anneal.placement
      in
      let routed =
        Route.Router.route_min_width Fpga_arch.Params.amdrel placement
      in
      let width =
        match routed.Route.Router.min_width with
        | Some w -> w
        | None -> routed.Route.Router.width
      in
      let g =
        Route.Rrgraph.build Fpga_arch.Params.amdrel
          problem.Place.Problem.grid placement ~width
      in
      let nets = Route.Router.net_terminals g problem in
      let incr = Route.Pathfinder.route ~incremental:true g nets in
      let full = Route.Pathfinder.route ~incremental:false g nets in
      Alcotest.(check bool)
        (Printf.sprintf "%s: incremental succeeds at width %d" name width)
        true incr.Route.Pathfinder.success;
      Alcotest.(check bool)
        (Printf.sprintf "%s: full rip-up succeeds at width %d" name width)
        true full.Route.Pathfinder.success;
      Alcotest.(check bool)
        (Printf.sprintf "%s: incremental routing is legal" name)
        true (Route.Pathfinder.no_overuse incr))
    [
      ("counter12", Core.Bench_circuits.counter 12);
      ("alu8", Core.Bench_circuits.alu 8);
    ]

(* The per-iteration stats thread through: iteration 1 reroutes every
   net, later iterations only the congested subset, and the counters are
   consistent with the result. *)
let test_iter_stats () =
  let problem, placement = place_random 7 in
  let g =
    Route.Rrgraph.build Fpga_arch.Params.amdrel problem.Place.Problem.grid
      placement ~width:8
  in
  let nets = Route.Router.net_terminals g problem in
  let r = Route.Pathfinder.route g nets in
  let stats = r.Route.Pathfinder.iter_stats in
  Alcotest.(check int) "one stat per iteration"
    r.Route.Pathfinder.iterations (List.length stats);
  (match stats with
  | first :: rest ->
      Alcotest.(check int) "iteration 1 reroutes every net"
        (Array.length nets) first.Route.Pathfinder.nets_rerouted;
      Alcotest.(check bool) "heap pops counted" true
        (first.Route.Pathfinder.heap_pops > 0);
      List.iter
        (fun (s : Route.Pathfinder.iter_stat) ->
          Alcotest.(check bool) "incremental reroutes a subset" true
            (s.Route.Pathfinder.nets_rerouted <= Array.length nets))
        rest
  | [] -> Alcotest.fail "no iteration stats");
  if r.Route.Pathfinder.success then
    match List.rev stats with
    | last :: _ ->
        Alcotest.(check int) "no overused nodes at convergence" 0
          last.Route.Pathfinder.overused_nodes
    | [] -> ()

(* A net whose driver cluster lost the signal must fail loudly, not
   route from slot 0 of the wrong BLE. *)
let test_net_terminals_bad_driver () =
  let problem, placement = place_random 11 in
  let g =
    Route.Rrgraph.build Fpga_arch.Params.amdrel problem.Place.Problem.grid
      placement ~width:6
  in
  (* corrupt one cluster-driven net's signal so no BLE output matches *)
  let nets = problem.Place.Problem.nets in
  let victim =
    Array.to_list nets
    |> List.find_map (fun (n : Place.Problem.net) ->
           match problem.Place.Problem.blocks.(n.Place.Problem.driver) with
           | Place.Problem.Cluster_block _ -> Some n
           | _ -> None)
  in
  match victim with
  | None -> () (* no cluster-driven net in this placement; nothing to test *)
  | Some n ->
      let idx =
        let found = ref (-1) in
        Array.iteri (fun i m -> if m == n then found := i) nets;
        !found
      in
      let saved = nets.(idx) in
      nets.(idx) <- { saved with Place.Problem.signal = max_int };
      let raised =
        match Route.Router.net_terminals g problem with
        | _ -> false
        | exception Failure _ -> true
      in
      nets.(idx) <- saved;
      Alcotest.(check bool) "bad driver signal raises Failure" true raised

(* ---------- bbox partitioner properties ---------- *)

(* An ascending-id reroute list with random (possibly degenerate or
   heavily overlapping) bounding boxes, like an iteration hands the
   partitioner. *)
let items_arb =
  let open QCheck.Gen in
  let bbox =
    int_bound 20 >>= fun x0 ->
    int_bound 20 >>= fun y0 ->
    int_bound 6 >>= fun w ->
    int_bound 6 >>= fun h -> return (x0, x0 + w, y0, y0 + h)
  in
  QCheck.make
    ~print:(fun items ->
      String.concat "; "
        (List.map
           (fun (i, (a, b, c, d)) -> Printf.sprintf "%d:(%d,%d,%d,%d)" i a b c d)
           items))
    (int_bound 40 >>= fun n ->
     list_repeat n bbox >|= List.mapi (fun i b -> (i, b)))

let prop_partition_exactly_once =
  QCheck.Test.make ~count:200
    ~name:"partition: every net in exactly one batch" items_arb
    (fun items ->
      let batches = Route.Pathfinder.partition_batches items in
      let ids = List.concat_map (List.map fst) batches in
      List.sort compare ids = List.map fst items)

let prop_partition_batch_disjoint =
  QCheck.Test.make ~count:200
    ~name:"partition: batch members pairwise bbox-disjoint" items_arb
    (fun items ->
      Route.Pathfinder.partition_batches items
      |> List.for_all (fun batch ->
             List.for_all
               (fun (i, bi) ->
                 List.for_all
                   (fun (j, bj) ->
                     i = j || Route.Pathfinder.bbox_disjoint bi bj)
                   batch)
               batch))

let prop_partition_order_preserved =
  QCheck.Test.make ~count:200
    ~name:"partition: ascending-id concatenation recovers the input"
    items_arb
    (fun items ->
      let batches = Route.Pathfinder.partition_batches items in
      (* members ascend within each batch — the commit order contract *)
      List.for_all
        (fun batch ->
          let ids = List.map fst batch in
          List.sort compare ids = ids)
        batches
      && List.sort compare (List.concat batches)
         = List.sort compare items)

(* ---------- intra-route determinism ---------- *)

(* One routing, any pool size: the batched snapshot semantics are
   unconditional, so jobs=1 and jobs=4 must agree on every tree, every
   iteration counter and the batching stats themselves. *)
let test_intra_route_jobs_deterministic () =
  let problem, placement = place_random 4321 in
  let g =
    Route.Rrgraph.build Fpga_arch.Params.amdrel problem.Place.Problem.grid
      placement ~width:7
  in
  let nets = Route.Router.net_terminals g problem in
  let crit = Array.make (Array.length nets) 0.3 in
  let route jobs =
    Route.Pathfinder.route ~jobs
      ~node_delay:
        (Route.Router.node_delays g
           (Route.Timing.default_constants Fpga_arch.Params.amdrel))
      g
      (Route.Router.net_terminals ~criticalities:crit g problem)
  in
  let seq = route 1 and par = route 4 in
  Alcotest.(check bool) "identical route trees" true
    (seq.Route.Pathfinder.trees = par.Route.Pathfinder.trees);
  Alcotest.(check bool) "identical iteration stats" true
    (seq.Route.Pathfinder.iter_stats = par.Route.Pathfinder.iter_stats);
  Alcotest.(check int) "same iteration count" seq.Route.Pathfinder.iterations
    par.Route.Pathfinder.iterations;
  (* the batch counters are live: iteration 1 reroutes every net, so at
     least one batch exists and no batch exceeds the net count *)
  match seq.Route.Pathfinder.iter_stats with
  | first :: _ ->
      Alcotest.(check bool) "batches counted" true
        (first.Route.Pathfinder.batches >= 1);
      Alcotest.(check bool) "batch_max bounded" true
        (first.Route.Pathfinder.batch_max >= 1
        && first.Route.Pathfinder.batch_max <= Array.length nets);
      Alcotest.(check bool) "serial_nets bounded" true
        (first.Route.Pathfinder.serial_nets <= first.Route.Pathfinder.nets_rerouted)
  | [] -> Alcotest.fail "no iteration stats"

(* The speculative parallel width search must replay the sequential
   decision path exactly: same minimum width, same final width, and the
   same routing tree for every net. *)
let test_width_search_jobs_deterministic () =
  let _, placement = place_random 1234 in
  let route jobs =
    Route.Router.route_min_width ~jobs Fpga_arch.Params.amdrel placement
  in
  let seq = route 1 and par = route 4 in
  Alcotest.(check (option int)) "min width" seq.Route.Router.min_width
    par.Route.Router.min_width;
  Alcotest.(check int) "final width" seq.Route.Router.width
    par.Route.Router.width;
  Alcotest.(check bool) "identical route trees" true
    (seq.Route.Router.result.Route.Pathfinder.trees
    = par.Route.Router.result.Route.Pathfinder.trees)

(* Multi-start annealing is seed-deterministic per start, so the winner
   (and its every block location) must not depend on the pool size. *)
let test_multistart_jobs_deterministic () =
  let problem, _ = place_random 99 in
  let run jobs =
    Place.Anneal.run_multistart
      ~options:{ Place.Anneal.seed = 7; inner_num = 0.3 }
      ~jobs ~starts:4 problem
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check (float 0.0)) "final cost" a.Place.Anneal.final_cost
    b.Place.Anneal.final_cost;
  Alcotest.(check bool) "identical block locations" true
    (a.Place.Anneal.placement.Place.Placement.loc
    = b.Place.Anneal.placement.Place.Placement.loc)

(* The multi-start winner must be exactly the best of the individual
   runs — the per-start resummed exit costs feed selection directly, so
   no accumulation drift can flip a comparison. *)
let test_multistart_winner_is_best_run () =
  let problem, _ = place_random 17 in
  let seed = 11 in
  let runs =
    List.init 4 (fun k ->
        Place.Anneal.run
          ~options:{ Place.Anneal.seed = seed + k; inner_num = 0.3 }
          problem)
  in
  let best =
    List.fold_left
      (fun (best : Place.Anneal.result) r ->
        if r.Place.Anneal.final_cost < best.Place.Anneal.final_cost then r
        else best)
      (List.hd runs) (List.tl runs)
  in
  let multi =
    Place.Anneal.run_multistart
      ~options:{ Place.Anneal.seed; inner_num = 0.3 }
      ~jobs:2 ~starts:4 problem
  in
  Alcotest.(check (float 0.0)) "winner cost = best individual cost"
    best.Place.Anneal.final_cost multi.Place.Anneal.final_cost;
  Alcotest.(check bool) "winner placement = best individual placement" true
    (best.Place.Anneal.placement.Place.Placement.loc
    = multi.Place.Anneal.placement.Place.Placement.loc)

(* Budget-adaptive pruning: kill decisions happen on a merged snapshot
   at a barrier, so the winner is jobs-independent; a margin too large
   to ever trigger reproduces the unpruned winner exactly; and pruning
   can only lose starts, never improve on the full set. *)
let test_multistart_pruned_deterministic () =
  let problem, _ = place_random 99 in
  let options = { Place.Anneal.seed = 7; inner_num = 0.3 } in
  let pruned jobs =
    Place.Anneal.run_multistart ~options ~jobs ~starts:4 ~prune_margin:0.3
      ~prune_interval:2 problem
  in
  let p1 = pruned 1 and p4 = pruned 4 in
  Alcotest.(check (float 0.0)) "pruned winner cost jobs-independent"
    p1.Place.Anneal.final_cost p4.Place.Anneal.final_cost;
  Alcotest.(check bool) "pruned winner placement jobs-independent" true
    (p1.Place.Anneal.placement.Place.Placement.loc
    = p4.Place.Anneal.placement.Place.Placement.loc);
  let full =
    Place.Anneal.run_multistart ~options ~jobs:4 ~starts:4 problem
  in
  let never_pruned =
    Place.Anneal.run_multistart ~options ~jobs:4 ~starts:4 ~prune_margin:1e9
      problem
  in
  Alcotest.(check (float 0.0)) "infinite margin = unpruned winner"
    full.Place.Anneal.final_cost never_pruned.Place.Anneal.final_cost;
  Alcotest.(check bool) "infinite margin = unpruned placement" true
    (full.Place.Anneal.placement.Place.Placement.loc
    = never_pruned.Place.Anneal.placement.Place.Placement.loc);
  Alcotest.(check bool) "pruning never beats the full set" true
    (p4.Place.Anneal.final_cost >= full.Place.Anneal.final_cost)

(* starts = 1 must be exactly the single run (the flow default). *)
let test_multistart_single_is_run () =
  let problem, _ = place_random 5 in
  let options = { Place.Anneal.seed = 3; inner_num = 0.3 } in
  let single = Place.Anneal.run ~options problem in
  let multi = Place.Anneal.run_multistart ~options ~jobs:4 ~starts:1 problem in
  Alcotest.(check (float 0.0)) "final cost" single.Place.Anneal.final_cost
    multi.Place.Anneal.final_cost;
  Alcotest.(check bool) "identical block locations" true
    (single.Place.Anneal.placement.Place.Placement.loc
    = multi.Place.Anneal.placement.Place.Placement.loc)

let suite =
  [
    Alcotest.test_case "incremental vs full rip-up" `Slow
      test_incremental_matches_full;
    Alcotest.test_case "intra-route jobs-deterministic" `Quick
      test_intra_route_jobs_deterministic;
    Alcotest.test_case "width search jobs-deterministic" `Quick
      test_width_search_jobs_deterministic;
    Alcotest.test_case "multi-start jobs-deterministic" `Quick
      test_multistart_jobs_deterministic;
    Alcotest.test_case "multi-start winner = best run" `Quick
      test_multistart_winner_is_best_run;
    Alcotest.test_case "multi-start pruning deterministic" `Quick
      test_multistart_pruned_deterministic;
    Alcotest.test_case "multi-start single = run" `Quick
      test_multistart_single_is_run;
    Alcotest.test_case "per-iteration router stats" `Quick test_iter_stats;
    Alcotest.test_case "net_terminals rejects bad driver" `Quick
      test_net_terminals_bad_driver;
    QCheck_alcotest.to_alcotest prop_routed_trees_valid;
    QCheck_alcotest.to_alcotest prop_partition_exactly_once;
    QCheck_alcotest.to_alcotest prop_partition_batch_disjoint;
    QCheck_alcotest.to_alcotest prop_partition_order_preserved;
  ]
