(* Mixed-length segmented routing fabric: spec parsing/validation, the
   per-track plan, structural properties of the segmented RR graph
   (span contiguity and stagger, Fs = 3 endpoint-only switch boxes,
   per-type Fc), isomorphism of the uniform special case with the
   legacy builder, end-to-end determinism across Domain-pool sizes,
   and cache invalidation on segment-mix changes. *)

module P = Fpga_arch.Params
module R = Obs.Registry

let params_of_mix ?fc_in ?fc_out mix =
  P.validate
    { P.amdrel with P.segments = P.segments_of_string ?fc_in ?fc_out mix }

(* ---------- spec parsing and validation ---------- *)

let test_mix_parsing () =
  let segs = P.segments_of_string "4xL1+4xL2+2xL4" in
  Alcotest.(check (list (pair int int)))
    "counts and lengths in declaration order"
    [ (4, 1); (4, 2); (2, 4) ]
    (List.map (fun s -> (s.P.s_count, s.P.s_length)) segs);
  (* a bare term means count 1 *)
  let one = P.segments_of_string "L8" in
  Alcotest.(check (list (pair int int))) "bare term counts once" [ (1, 8) ]
    (List.map (fun s -> (s.P.s_count, s.P.s_length)) one);
  (* optional fc / metal defaults thread through *)
  let custom = P.segments_of_string ~fc_in:0.5 ~fc_out:0.25 "2xL2" in
  List.iter
    (fun s ->
      Alcotest.(check (float 0.0)) "fc_in" 0.5 s.P.s_fc_in;
      Alcotest.(check (float 0.0)) "fc_out" 0.25 s.P.s_fc_out)
    custom;
  (* mix_name round-trips the spec through a params record *)
  let p = params_of_mix "2xL1+1xL2+1xL4" in
  Alcotest.(check string) "mix_name" "2xL1+1xL2+1xL4" (P.mix_name p);
  Alcotest.(check string) "legacy fabric names its uniform mix" "1xL1"
    (P.mix_name P.amdrel)

let check_invalid msg f =
  match f () with
  | exception P.Invalid_params _ -> ()
  | _ -> Alcotest.fail (msg ^ ": expected Invalid_params")

let test_mix_errors () =
  check_invalid "empty spec" (fun () -> P.segments_of_string "");
  check_invalid "garbage term" (fun () -> P.segments_of_string "4xZ2");
  check_invalid "missing length" (fun () -> P.segments_of_string "4x");
  check_invalid "empty term" (fun () -> P.segments_of_string "1xL1++1xL2")

let test_validate_spec () =
  let seg length count fc =
    {
      P.s_length = length;
      s_count = count;
      s_fc_in = fc;
      s_fc_out = fc;
      s_metal = P.Metal_min_double;
    }
  in
  let with_segs segments () =
    ignore (P.validate { P.amdrel with P.segments })
  in
  check_invalid "zero length" (with_segs [ seg 0 1 1.0 ]);
  check_invalid "absurd length" (with_segs [ seg 65 1 1.0 ]);
  check_invalid "zero count" (with_segs [ seg 1 0 1.0 ]);
  check_invalid "fc zero" (with_segs [ seg 1 1 0.0 ]);
  check_invalid "fc above one" (with_segs [ seg 1 1 1.5 ]);
  (* errors carry the offending segment so they are actionable *)
  (let contains hay needle =
     let nh = String.length hay and nn = String.length needle in
     let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
     at 0
   in
   match P.validate { P.amdrel with P.segments = [ seg 1 1 1.0; seg 0 1 1.0 ] } with
   | exception P.Invalid_params m ->
       Alcotest.(check bool)
         (Printf.sprintf "error names the segment (%s)" m)
         true
         (contains m "segment 1")
   | _ -> Alcotest.fail "expected Invalid_params");
  (* a healthy mixed spec passes *)
  ignore (P.validate { P.amdrel with P.segments = [ seg 1 2 0.5; seg 4 1 1.0 ] })

let test_archfile_segments_roundtrip () =
  let p =
    P.validate
      {
        P.amdrel with
        P.segments =
          [
            {
              P.s_length = 1;
              s_count = 2;
              s_fc_in = 0.5;
              s_fc_out = 0.25;
              s_metal = P.Metal_min_min;
            };
            {
              P.s_length = 4;
              s_count = 1;
              s_fc_in = 1.0;
              s_fc_out = 1.0;
              s_metal = P.Metal_double_double;
            };
          ];
      }
  in
  Alcotest.(check bool) "segment lines survive the arch file" true
    (Fpga_arch.Archfile.of_string (Fpga_arch.Archfile.to_string p) = p)

(* ---------- the track plan ---------- *)

let test_track_plan_uniform_reduction () =
  List.iter
    (fun len ->
      let legacy = { P.amdrel with P.segment_length = len } in
      let explicit =
        {
          legacy with
          P.segments =
            [
              {
                P.s_length = len;
                s_count = 1;
                s_fc_in = P.amdrel.P.fc_in;
                s_fc_out = P.amdrel.P.fc_out;
                s_metal = P.Metal_min_double;
              };
            ];
        }
      in
      let width = 9 in
      Alcotest.(check bool)
        (Printf.sprintf "explicit [1xL%d] plan = legacy plan" len)
        true
        (P.track_plan legacy ~width = P.track_plan explicit ~width);
      Array.iteri
        (fun t (si, offset) ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "L%d track %d staggers t mod len" len t)
            (0, t mod len) (si, offset))
        (P.track_plan legacy ~width))
    [ 1; 2; 4 ]

(* ---------- track spans: QCheck structural properties ---------- *)

(* random mixes over small widths/extents; spans must tile the channel
   contiguously, interior wires must have exactly the declared length,
   and the first wire's clip pins the stagger offset *)
let mix_arb =
  QCheck.make
    ~print:(fun (segs, width, extent) ->
      Printf.sprintf "%s width=%d extent=%d"
        (String.concat "+"
           (List.map
              (fun (c, l) -> Printf.sprintf "%dxL%d" c l)
              segs))
        width extent)
    QCheck.Gen.(
      triple
        (list_size (int_range 1 3)
           (pair (int_range 1 3) (oneofl [ 1; 2; 3; 4; 8 ])))
        (int_range 1 10) (int_range 1 12))

let prop_track_spans =
  QCheck.Test.make ~count:200
    ~name:"segments: spans tile the channel, interior wires full length"
    mix_arb
    (fun (mix, width, extent) ->
      QCheck.assume (mix <> []);
      let segments =
        List.map
          (fun (c, l) ->
            {
              P.s_length = l;
              s_count = c;
              s_fc_in = 1.0;
              s_fc_out = 1.0;
              s_metal = P.Metal_min_double;
            })
          mix
      in
      let params = P.validate { P.amdrel with P.segments } in
      let segs = Array.of_list (P.effective_segments params) in
      let plan = P.track_plan params ~width in
      let ok = ref true in
      for t = 0 to width - 1 do
        let si, offset = plan.(t) in
        let len = segs.(si).P.s_length in
        let spans = Route.Rrgraph.track_spans params ~width ~extent ~track:t in
        let n = List.length spans in
        (* contiguous cover of 1..extent *)
        let next =
          List.fold_left
            (fun expect (s, tiles) ->
              if s <> expect || tiles < 1 || tiles > len then ok := false;
              s + tiles)
            1 spans
        in
        if next <> extent + 1 then ok := false;
        (* interior wires carry exactly the declared length *)
        List.iteri
          (fun i (_, tiles) ->
            if i > 0 && i < n - 1 && tiles <> len then ok := false)
          spans;
        (* the first wire's clip is the track's stagger offset *)
        (match spans with
        | (1, tiles) :: _ ->
            if tiles <> min extent (len - offset) then ok := false
        | _ -> ok := false)
      done;
      !ok)

(* ---------- RR graph structure on a placed design ---------- *)

let wire_desc (g : Route.Rrgraph.t) i =
  match g.Route.Rrgraph.nodes.(i).Route.Rrgraph.kind with
  | Route.Rrgraph.Chanx (xs, y, t) ->
      Some (`X, xs, y, t, g.Route.Rrgraph.nodes.(i).Route.Rrgraph.wire_tiles)
  | Route.Rrgraph.Chany (x, ys, t) ->
      Some (`Y, x, ys, t, g.Route.Rrgraph.nodes.(i).Route.Rrgraph.wire_tiles)
  | _ -> None

(* switch-point coordinates where a wire ends (S-space: (x, y) between
   tiles, matching the VPR switch-box lattice) *)
let endpoints = function
  | `X, xs, y, _, tiles -> [ ((xs - 1, y), ()); ((xs + tiles - 1, y), ()) ]
  | `Y, x, ys, _, tiles -> [ ((x, ys - 1), ()); ((x, ys + tiles - 1), ()) ]

let graph_for params seed ~width =
  let problem, placement = Test_route.place_random seed in
  (problem, Route.Rrgraph.build params problem.Place.Problem.grid placement ~width)

(* every explicitly uniform spec builds the same graph as the legacy
   single-length path: same node ids, same edges *)
let test_uniform_isomorphism () =
  List.iter
    (fun len ->
      let legacy =
        P.validate { P.amdrel with P.segment_length = len }
      in
      let explicit =
        P.validate
          {
            legacy with
            P.segments =
              [
                {
                  P.s_length = len;
                  s_count = 1;
                  s_fc_in = legacy.P.fc_in;
                  s_fc_out = legacy.P.fc_out;
                  s_metal = P.Metal_min_double;
                };
              ];
          }
      in
      let _, g1 = graph_for legacy 17 ~width:6 in
      let _, g2 = graph_for explicit 17 ~width:6 in
      Alcotest.(check bool)
        (Printf.sprintf "L%d: node arrays identical" len)
        true
        (g1.Route.Rrgraph.nodes = g2.Route.Rrgraph.nodes);
      Alcotest.(check bool)
        (Printf.sprintf "L%d: edge arrays identical" len)
        true
        (g1.Route.Rrgraph.edges = g2.Route.Rrgraph.edges))
    [ 1; 2; 4 ]

(* the switch boxes of a mixed fabric: reconstruct the expected
   wire-wire edge set independently from track_spans (same track, a
   shared endpoint), compare against the graph, and check the disjoint
   box's Fs = 3 bound per switch point *)
let test_switchbox_endpoint_edges () =
  let params = params_of_mix "2xL1+1xL2+1xL4" in
  let problem, g = graph_for params 23 ~width:8 in
  let nx = problem.Place.Problem.grid.Fpga_arch.Grid.nx in
  let ny = problem.Place.Problem.grid.Fpga_arch.Grid.ny in
  (* all wires, from the span geometry *)
  let wires = ref [] in
  for t = 0 to g.Route.Rrgraph.width - 1 do
    for y = 0 to ny do
      List.iter
        (fun (xs, tiles) -> wires := (`X, xs, y, t, tiles) :: !wires)
        (Route.Rrgraph.track_spans params ~width:g.Route.Rrgraph.width
           ~extent:nx ~track:t)
    done;
    for x = 0 to nx do
      List.iter
        (fun (ys, tiles) -> wires := (`Y, x, ys, t, tiles) :: !wires)
        (Route.Rrgraph.track_spans params ~width:g.Route.Rrgraph.width
           ~extent:ny ~track:t)
    done
  done;
  let track (_, _, _, t, _) = t in
  let expected = Hashtbl.create 256 in
  let enders = Hashtbl.create 256 in
  List.iter
    (fun w ->
      List.iter
        (fun (pt, ()) ->
          Hashtbl.replace enders (pt, track w)
            (w :: Option.value (Hashtbl.find_opt enders (pt, track w))
                    ~default:[]))
        (endpoints w))
    !wires;
  Hashtbl.iter
    (fun _ ws ->
      (* disjoint Fs = 3: at most 4 same-track wires end at one point,
         so each has at most 3 switch partners there *)
      Alcotest.(check bool) "Fs <= 3 per switch point" true
        (List.length ws <= 4);
      List.iter
        (fun a ->
          List.iter
            (fun b -> if a <> b then Hashtbl.replace expected (a, b) ())
            ws)
        ws)
    enders;
  (* actual wire-wire edges from the graph *)
  let actual = Hashtbl.create 256 in
  Array.iteri
    (fun i succs ->
      match wire_desc g i with
      | None -> ()
      | Some a ->
          Array.iter
            (fun j ->
              match wire_desc g j with
              | None -> ()
              | Some b -> Hashtbl.replace actual (a, b) ())
            succs)
    g.Route.Rrgraph.edges;
  let sorted h = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) h []) in
  Alcotest.(check bool) "graph has wire-wire edges" true
    (Hashtbl.length actual > 0);
  Alcotest.(check bool)
    "wire-wire edges = same-track shared-endpoint pairs" true
    (sorted actual = sorted expected);
  (* the mixed fabric really carries long wires: the L4 track with
     stagger offset 0 starts a wire at tile 1 spanning min(extent, 4)
     tiles, so even a small grid must show multi-tile wires *)
  Alcotest.(check bool) "long wires present" true
    (List.exists
       (fun (_, _, _, _, tiles) -> tiles = min 4 (max nx ny))
       !wires)

(* per-type Fc: each pin reaches exactly fc_tracks(fc, n) distinct
   tracks of every segment type *)
let test_fc_per_type () =
  let segments =
    [
      {
        P.s_length = 1;
        s_count = 2;
        s_fc_in = 0.5;
        s_fc_out = 0.5;
        s_metal = P.Metal_min_double;
      };
      {
        P.s_length = 2;
        s_count = 2;
        s_fc_in = 1.0;
        s_fc_out = 1.0;
        s_metal = P.Metal_min_double;
      };
    ]
  in
  let params = P.validate { P.amdrel with P.segments } in
  let width = 8 in
  let _, g = graph_for params 31 ~width in
  let plan = P.track_plan params ~width in
  let n_of_type = [| 0; 0 |] in
  Array.iter (fun (si, _) -> n_of_type.(si) <- n_of_type.(si) + 1) plan;
  let fc_tracks fc n =
    if n = 0 then 0
    else max 1 (min n (int_of_float (Float.round (fc *. float_of_int n))))
  in
  let distinct_tracks_by_type ids =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun i ->
        match wire_desc g i with
        | Some (_, _, _, t, _) -> Hashtbl.replace tbl (fst plan.(t), t) ()
        | None -> ())
      ids;
    let counts = [| 0; 0 |] in
    Hashtbl.iter (fun (si, _) () -> counts.(si) <- counts.(si) + 1) tbl;
    counts
  in
  (* opins: successors; ipins: predecessors (via a reverse sweep) *)
  let preds = Hashtbl.create 256 in
  Array.iteri
    (fun i succs ->
      Array.iter
        (fun j ->
          Hashtbl.replace preds j
            (i :: Option.value (Hashtbl.find_opt preds j) ~default:[]))
        succs)
    g.Route.Rrgraph.edges;
  let checked = ref 0 in
  Array.iteri
    (fun i node ->
      match node.Route.Rrgraph.kind with
      | Route.Rrgraph.Opin _ ->
          let counts =
            distinct_tracks_by_type
              (Array.to_list g.Route.Rrgraph.edges.(i))
          in
          List.iteri
            (fun si (s : P.segment) ->
              incr checked;
              Alcotest.(check int)
                (Printf.sprintf "opin %d fc_out tracks of type %d" i si)
                (fc_tracks s.P.s_fc_out n_of_type.(si))
                counts.(si))
            segments
      | Route.Rrgraph.Ipin _ ->
          let counts =
            distinct_tracks_by_type
              (Option.value (Hashtbl.find_opt preds i) ~default:[])
          in
          List.iteri
            (fun si (s : P.segment) ->
              incr checked;
              Alcotest.(check int)
                (Printf.sprintf "ipin %d fc_in tracks of type %d" i si)
                (fc_tracks s.P.s_fc_in n_of_type.(si))
                counts.(si))
            segments
      | _ -> ())
    g.Route.Rrgraph.nodes;
  Alcotest.(check bool) "pins were checked" true (!checked > 0)

(* ---------- end-to-end: determinism across pool sizes ---------- *)

let test_e2e_jobs_deterministic () =
  let params = params_of_mix "1xL1+1xL2+1xL4" in
  List.iter
    (fun (name, vhdl) ->
      let run jobs =
        Core.Flow.run_vhdl
          ~config:
            {
              Core.Flow.default_config with
              Core.Flow.params;
              Core.Flow.timing_driven = true;
              Core.Flow.jobs = Some jobs;
            }
          vhdl
      in
      let a = run 1 and b = run 4 in
      Alcotest.(check string) (name ^ ": bitstream bytes identical")
        a.Core.Flow.bitstream.Bitstream.Dagger.bytes
        b.Core.Flow.bitstream.Bitstream.Dagger.bytes;
      Alcotest.(check (option int)) (name ^ ": Wmin identical")
        a.Core.Flow.route_stats.Route.Router.minimum_width
        b.Core.Flow.route_stats.Route.Router.minimum_width;
      Alcotest.(check string) (name ^ ": timing report identical")
        (Core.Flow.timing_report_json ~design:name a)
        (Core.Flow.timing_report_json ~design:name b);
      Alcotest.(check int) (name ^ ": long-wire usage identical")
        a.Core.Flow.route_stats.Route.Router.long_wire_nodes
        b.Core.Flow.route_stats.Route.Router.long_wire_nodes;
      (* the mixed fabric was actually exercised: some routed wire has
         declared length > 1 *)
      Alcotest.(check bool) (name ^ ": long wires routed") true
        (a.Core.Flow.route_stats.Route.Router.long_wire_nodes > 0))
    [
      ("counter8", Core.Bench_circuits.counter 8);
      ("mult4", Core.Bench_circuits.multiplier 4);
    ]

(* ---------- cache: segment-mix invalidation granularity ---------- *)

let test_cache_segment_mix_granularity () =
  let dir = Filename.temp_dir "amdrel-seg-cache-test" "" in
  let vhdl = Core.Bench_circuits.counter 8 in
  let config mix =
    { Core.Flow.default_config with Core.Flow.params = params_of_mix mix }
  in
  let counter obs name =
    match R.find (R.snapshot obs) name with
    | Some (R.Counter n) -> n
    | _ -> 0
  in
  let run config vhdl =
    let obs = R.create () in
    let r =
      Core.Flow.run_vhdl
        ~config:{ config with Core.Flow.cache_dir = Some dir }
        ~obs vhdl
    in
    (r, obs)
  in
  let cold, obs_c = run (config "1xL1+1xL4") vhdl in
  Alcotest.(check int) "cold: every stage stored" 8
    (counter obs_c "cache.store");
  let warm, obs_w = run (config "1xL1+1xL4") vhdl in
  Alcotest.(check int) "warm: all seven stages hit" 7
    (counter obs_w "cache.hit");
  Alcotest.(check int) "warm: no misses" 0 (counter obs_w "cache.miss");
  Alcotest.(check string) "warm bitstream byte-identical"
    cold.Core.Flow.bitstream.Bitstream.Dagger.bytes
    warm.Core.Flow.bitstream.Bitstream.Dagger.bytes;
  (* comment-only VHDL edit on the segmented fabric: early cutoff keeps
     everything below synth *)
  let _, obs_e = run (config "1xL1+1xL4") (vhdl ^ "\n-- a trailing comment\n") in
  Alcotest.(check int) "comment edit: only synth misses" 1
    (counter obs_e "cache.miss");
  Alcotest.(check int) "comment edit: downstream hits" 6
    (counter obs_e "cache.hit");
  (* changing the wire mix invalidates route and below, but the front
     end through placement (which ignores routing params) still hits *)
  let _, obs_m = run (config "1xL1+1xL2") vhdl in
  Alcotest.(check int) "mix change: hits through place" 4
    (counter obs_m "cache.hit");
  Alcotest.(check int) "mix change: route and below miss" 4
    (counter obs_m "cache.miss")

let suite =
  [
    Alcotest.test_case "segment spec parsing" `Quick test_mix_parsing;
    Alcotest.test_case "segment spec parse errors" `Quick test_mix_errors;
    Alcotest.test_case "segment spec validation" `Quick test_validate_spec;
    Alcotest.test_case "arch file keeps segment lines" `Quick
      test_archfile_segments_roundtrip;
    Alcotest.test_case "track plan: uniform reduction" `Quick
      test_track_plan_uniform_reduction;
    QCheck_alcotest.to_alcotest prop_track_spans;
    Alcotest.test_case "uniform spec isomorphic to legacy graph" `Quick
      test_uniform_isomorphism;
    Alcotest.test_case "switch boxes join same-track segment endpoints"
      `Quick test_switchbox_endpoint_edges;
    Alcotest.test_case "per-type Fc honoured at every pin" `Quick
      test_fc_per_type;
    Alcotest.test_case "mixed fabric e2e deterministic across jobs" `Quick
      test_e2e_jobs_deterministic;
    Alcotest.test_case "cache granularity on segment-mix changes" `Quick
      test_cache_segment_mix_granularity;
  ]
