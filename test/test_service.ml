(* The compile service: JSON parsing, the wire protocol, manifest
   resolution, concurrent cache writers, size-bounded eviction, and an
   end-to-end daemon exercise (concurrent submissions bit-identical to
   standalone runs, backpressure, graceful drain). *)

module E = Obs.Emit
module R = Obs.Registry
module J = Service.Jsonin
module P = Service.Protocol

let counter obs name =
  match R.find (R.snapshot obs) name with
  | Some (R.Counter n) -> n
  | _ -> 0

let fresh_dir () = Filename.temp_dir "amdrel-service-test" ""

(* ---------- Jsonin: parsing back what Emit produces ---------- *)

let test_jsonin_roundtrip () =
  let samples =
    [
      E.Null;
      E.Bool true;
      E.Int (-42);
      E.Float 1.5;
      E.String "plain";
      E.String "esc \" \\ \n \t \x01 end";
      E.List [ E.Int 1; E.List []; E.Obj [] ];
      E.Obj
        [
          ("a", E.Int 0);
          ("nested", E.Obj [ ("l", E.List [ E.Bool false; E.Null ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = E.to_string v in
      (* parse . print is the identity on printed JSON: this is what
         makes byte-comparing re-rendered responses meaningful *)
      Alcotest.(check string) ("stable: " ^ s) s (E.to_string (J.parse s)))
    samples

let test_jsonin_values () =
  let p = J.parse in
  Alcotest.(check bool) "int" true (p "17" = E.Int 17);
  Alcotest.(check bool) "negative float" true (p "-2.5" = E.Float (-2.5));
  Alcotest.(check bool) "exponent is float" true (p "1e2" = E.Float 100.0);
  Alcotest.(check bool) "unicode escape" true
    (p {|"Aé"|} = E.String "A\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (p {|"😀"|} = E.String "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "whitespace tolerated" true
    (p " { \"k\" : [ 1 , 2 ] } " = E.Obj [ ("k", E.List [ E.Int 1; E.Int 2 ]) ]);
  List.iter
    (fun bad ->
      match J.parse bad with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" bad)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_jsonin_accessors () =
  let o = J.parse {|{"s":"x","b":true,"i":3,"f":2.5,"fi":4.0}|} in
  Alcotest.(check (option string)) "string" (Some "x")
    (Option.bind (J.member "s" o) J.get_string);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (J.member "b" o) J.get_bool);
  Alcotest.(check (option int)) "int" (Some 3)
    (Option.bind (J.member "i" o) J.get_int);
  Alcotest.(check (option int)) "integral float as int" (Some 4)
    (Option.bind (J.member "fi" o) J.get_int);
  Alcotest.(check bool) "float" true
    (Option.bind (J.member "f" o) J.get_float = Some 2.5);
  Alcotest.(check bool) "int as float" true
    (Option.bind (J.member "i" o) J.get_float = Some 3.0);
  Alcotest.(check bool) "absent member" true (J.member "zz" o = None)

(* Property form of the same contract: parse . print is the identity on
   printed JSON for arbitrary value trees — control characters escape
   and come back, non-finite floats normalise to null, deep nesting
   survives.  Stability is checked on the printed bytes because the
   tree itself may legitimately change shape (a float that prints
   without '.'/'e' reparses as an int with the same rendering). *)
let emit_arb =
  let open QCheck.Gen in
  let any_string =
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12)
  in
  let any_float =
    oneof
      [
        float;
        oneofl [ Float.nan; Float.infinity; Float.neg_infinity; 1e300; -1e-300 ];
      ]
    (* -0. prints as "-0", which reparses as the integer 0: normalise *)
    |> map (fun f -> if f = 0.0 then 0.0 else f)
  in
  let leaf =
    oneof
      [
        return E.Null;
        map (fun b -> E.Bool b) bool;
        map (fun i -> E.Int i) int;
        map (fun f -> E.Float f) any_float;
        map (fun s -> E.String s) any_string;
      ]
  in
  let tree =
    sized
    @@ fix (fun self n ->
           if n <= 0 then leaf
           else
             frequency
               [
                 (3, leaf);
                 ( 1,
                   map
                     (fun l -> E.List l)
                     (list_size (int_range 0 4) (self (n / 2))) );
                 ( 1,
                   map
                     (fun kvs -> E.Obj kvs)
                     (list_size (int_range 0 4)
                        (pair any_string (self (n / 2)))) );
               ])
  in
  QCheck.make ~print:E.to_string tree

let prop_jsonin_print_stable =
  QCheck.Test.make ~count:500 ~name:"parse . print is the printed identity"
    emit_arb (fun v ->
      let s = E.to_string v in
      E.to_string (J.parse s) = s)

let test_jsonin_parse_result () =
  (match J.parse_result "{\"a\": [1, 2]}" with
  | Ok v ->
      Alcotest.(check string) "ok case parses" "{\"a\": [1, 2]}"
        (E.to_string v)
  | Error e -> Alcotest.failf "unexpected parse failure: %s" e);
  List.iter
    (fun bad ->
      match J.parse_result bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse_result accepted %S" bad)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"\\q\""; "{\"a\":1} extra" ]

(* ---------- the wire protocol ---------- *)

let test_protocol_roundtrip () =
  let roundtrip r =
    match P.request_of_json (J.parse (E.to_string (P.request_to_json r))) with
    | Ok r' -> Alcotest.(check bool) "roundtrips" true (r = r')
    | Error e -> Alcotest.failf "roundtrip failed: %s" e
  in
  roundtrip P.Status;
  roundtrip P.Metrics;
  roundtrip P.Shutdown;
  roundtrip (P.Submit { P.default_submit with P.vhdl = "entity e is end;" });
  roundtrip (P.Watch 42);
  roundtrip
    (P.Submit
       {
         P.vhdl = "x";
         seed = 7;
         route_width = Some 10;
         timing_report = true;
         period_ns = Some 12.5;
         place_starts = 3;
         progress = true;
       })

let test_protocol_errors () =
  let err s =
    match P.request_of_json (J.parse s) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  err {|{"no":"verb"}|};
  err {|{"verb":"frobnicate"}|};
  err {|{"verb":"submit"}|} (* vhdl required *);
  err {|{"verb":"submit","vhdl":3}|};
  err {|{"verb":"submit","vhdl":"x","seed":"high"}|};
  (* null optional fields read as absent, not as type errors *)
  match P.request_of_json (J.parse {|{"verb":"submit","vhdl":"x","route_width":null}|}) with
  | Ok (P.Submit s) ->
      Alcotest.(check bool) "null optional = default" true (s.P.route_width = None)
  | _ -> Alcotest.fail "null optional rejected"

let test_hex_roundtrip () =
  let all = String.init 256 Char.chr in
  Alcotest.(check (result string string)) "roundtrip" (Ok all)
    (P.hex_decode (P.hex_encode all));
  Alcotest.(check bool) "odd length rejected" true
    (Result.is_error (P.hex_decode "abc"));
  Alcotest.(check bool) "non-hex rejected" true
    (Result.is_error (P.hex_decode "zz"))

(* ---------- manifest resolution (the --batch CWD bug) ---------- *)

let test_manifest_resolution () =
  let dir = fresh_dir () in
  let manifest = Filename.concat dir "designs.txt" in
  let oc = open_out manifest in
  output_string oc "a.vhd\n\n# a comment\n  sub/b.vhd  \n/abs/c.vhd\n";
  close_out oc;
  (* The regression: a same-named file in the CWD must NOT win over the
     manifest directory.  (The old driver checked Sys.file_exists on the
     bare line first, silently compiling whatever the CWD held.) *)
  let decoy = "a.vhd" in
  let had_decoy = Sys.file_exists decoy in
  if not had_decoy then begin
    let oc = open_out decoy in
    output_string oc "-- decoy: must never be picked up\n";
    close_out oc
  end;
  let paths = Service.Manifest.read manifest in
  if not had_decoy then Sys.remove decoy;
  Alcotest.(check (list string)) "resolved against the manifest dir"
    [
      Filename.concat dir "a.vhd";
      Filename.concat dir "sub/b.vhd";
      "/abs/c.vhd";
    ]
    paths;
  Alcotest.(check string) "resolve: relative"
    (Filename.concat dir "x.vhd")
    (Service.Manifest.resolve ~manifest "x.vhd");
  Alcotest.(check string) "resolve: absolute untouched" "/a/b.vhd"
    (Service.Manifest.resolve ~manifest "/a/b.vhd")

(* ---------- concurrent writers on one store key ---------- *)

let test_concurrent_store_same_key () =
  let dir = fresh_dir () in
  let k = Cache.Store.key [ "hammer"; "v1" ] in
  let payload tag j = (tag, j, String.make 2048 (Char.chr (65 + tag))) in
  (* four domains, each with its own handle and registry, all hammering
     the same key with interleaved stores and reads *)
  let domains =
    Array.init 4 (fun tag ->
        Domain.spawn (fun () ->
            let obs = R.create () in
            let s = Cache.Store.open_ ~obs dir in
            for j = 0 to 149 do
              Cache.Store.store s k (payload tag j);
              match (Cache.Store.find s k : (int * int * string) option) with
              | Some (t, _, body) ->
                  (* whatever we read is some writer's complete value,
                     never an interleaving of two *)
                  if String.length body <> 2048 || body.[0] <> Char.chr (65 + t)
                  then failwith "torn read"
              | None -> () (* lost the race to a concurrent rename; fine *)
            done;
            counter obs "cache.corrupt"))
  in
  let corrupt = Array.fold_left (fun n d -> n + Domain.join d) 0 domains in
  Alcotest.(check int) "no read ever saw a torn entry" 0 corrupt;
  (* the survivor is one writer's complete payload *)
  (match (Cache.Store.find (Cache.Store.open_ dir) k : (int * int * string) option) with
  | Some (t, _, body) ->
      Alcotest.(check bool) "final entry complete" true
        (String.length body = 2048 && body.[0] = Char.chr (65 + t))
  | None -> Alcotest.fail "entry missing after the hammer");
  (* every temp file was renamed or belongs to nobody: none left behind *)
  let temps =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun n -> Filename.check_suffix n ".tmp")
  in
  Alcotest.(check (list string)) "no temp debris" [] temps

(* ---------- size-bounded eviction ---------- *)

let stage_mtime path t = Unix.utimes path t t

let seed_entries s n =
  (* n entries with distinct keys and strictly increasing staged mtimes
     (explicit, so filesystem timestamp granularity can't tie) *)
  List.init n (fun i ->
      let k = Cache.Store.key [ "gc"; string_of_int i ] in
      Cache.Store.store s k (i, String.make 1024 'e');
      stage_mtime (Cache.Store.path s k) (1.0e9 +. float_of_int i);
      k)

let test_gc_scan_only () =
  let dir = fresh_dir () in
  let obs = R.create () in
  let s = Cache.Store.open_ ~obs dir in
  let keys = seed_entries s 6 in
  let g = Cache.Store.gc s in
  Alcotest.(check int) "all entries counted" 6 g.Cache.Store.entries;
  Alcotest.(check int) "nothing evicted" 0 g.Cache.Store.evicted;
  Alcotest.(check bool) "resident bytes counted" true
    (g.Cache.Store.resident_bytes > 6 * 1024);
  List.iter
    (fun k ->
      Alcotest.(check bool) "entry survives a scan" true
        (Cache.Store.find s k <> (None : (int * string) option)))
    keys

let test_gc_lru_eviction () =
  let dir = fresh_dir () in
  let obs = R.create () in
  let s = Cache.Store.open_ ~obs dir in
  let keys = seed_entries s 6 in
  let total = (Cache.Store.gc s).Cache.Store.resident_bytes in
  let per_entry = total / 6 in
  (* budget for three entries: the three oldest must go, oldest first *)
  let g = Cache.Store.gc ~max_bytes:(3 * per_entry) s in
  Alcotest.(check int) "three evicted" 3 g.Cache.Store.evicted;
  Alcotest.(check bool) "under budget" true
    (g.Cache.Store.resident_bytes <= 3 * per_entry);
  List.iteri
    (fun i k ->
      let present = Cache.Store.find s k <> (None : (int * string) option) in
      Alcotest.(check bool)
        (Printf.sprintf "entry %d %s" i (if i < 3 then "evicted" else "kept"))
        (i >= 3) present)
    keys;
  Alcotest.(check int) "cache.evict counted" 3 (counter obs "cache.evict")

let test_gc_hit_refreshes_recency () =
  let dir = fresh_dir () in
  let s = Cache.Store.open_ dir in
  let keys = seed_entries s 3 in
  let k0 = List.nth keys 0 and k1 = List.nth keys 1 and k2 = List.nth keys 2 in
  let total = (Cache.Store.gc s).Cache.Store.resident_bytes in
  (* touch the oldest entry through a hit; now entry 1 is the LRU *)
  Alcotest.(check bool) "hit" true
    (Cache.Store.find s k0 <> (None : (int * string) option));
  let g = Cache.Store.gc ~max_bytes:(2 * (total / 3)) s in
  Alcotest.(check int) "one evicted" 1 g.Cache.Store.evicted;
  Alcotest.(check bool) "hit entry survives" true
    (Cache.Store.find s k0 <> (None : (int * string) option));
  Alcotest.(check bool) "un-hit LRU evicted" true
    (Cache.Store.find s k1 = (None : (int * string) option));
  Alcotest.(check bool) "newest survives" true
    (Cache.Store.find s k2 <> (None : (int * string) option))

let test_gc_corrupt_first () =
  let dir = fresh_dir () in
  let s = Cache.Store.open_ dir in
  let keys = seed_entries s 3 in
  (* corrupt the NEWEST entry: under a budget it must still be the first
     to go — a corrupt entry can only ever read as a miss *)
  let newest = List.nth keys 2 in
  let p = Cache.Store.path s newest in
  let ic = open_in_bin p in
  let half = really_input_string ic (in_channel_length ic / 2) in
  close_in ic;
  let oc = open_out_bin p in
  output_string oc half;
  close_out oc;
  stage_mtime p 2.0e9;
  let intact_bytes =
    let st0 = Unix.stat (Cache.Store.path s (List.nth keys 0)) in
    let st1 = Unix.stat (Cache.Store.path s (List.nth keys 1)) in
    st0.Unix.st_size + st1.Unix.st_size
  in
  let g = Cache.Store.gc ~max_bytes:intact_bytes s in
  Alcotest.(check int) "one evicted" 1 g.Cache.Store.evicted;
  Alcotest.(check int) "the corrupt one" 1 g.Cache.Store.evicted_corrupt;
  Alcotest.(check int) "both intact entries kept" 2 g.Cache.Store.entries;
  List.iteri
    (fun i k ->
      Alcotest.(check bool)
        (Printf.sprintf "intact entry %d kept" i)
        true
        (Cache.Store.find s k <> (None : (int * string) option)))
    [ List.nth keys 0; List.nth keys 1 ]

let test_gc_removes_stale_temps () =
  let dir = fresh_dir () in
  let s = Cache.Store.open_ dir in
  ignore (seed_entries s 2);
  let stale = Filename.concat dir ".part-9999-0-0.tmp" in
  let oc = open_out_bin stale in
  output_string oc "crashed writer leftovers";
  close_out oc;
  stage_mtime stale 1.0e9 (* long past the grace period *);
  let fresh = Filename.concat dir ".part-9999-0-1.tmp" in
  let oc = open_out_bin fresh in
  output_string oc "in-flight write";
  close_out oc;
  ignore (Cache.Store.gc s);
  Alcotest.(check bool) "stale temp removed" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh temp untouched" true (Sys.file_exists fresh)

(* ---------- the daemon, end to end ---------- *)

let short_sock () =
  let p = Filename.temp_file "amdreld" ".sock" in
  Sys.remove p;
  p

let quiet_server_config ~sock ~cache ~workers ~queue_depth ~jobs =
  {
    Service.Server.socket_path = sock;
    queue_depth;
    workers;
    jobs;
    cache_max_bytes = None;
    heartbeat_s = 1.0;
    flow = { Core.Flow.default_config with Core.Flow.cache_dir = Some cache };
    log = ignore;
  }

let submit_req vhdl = P.Submit { P.default_submit with P.vhdl }

let member_exn name resp =
  match J.member name resp with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (E.to_string resp)

let test_daemon_e2e () =
  let designs =
    [
      ("counter8", Core.Bench_circuits.counter 8);
      ("parity16", Core.Bench_circuits.parity 16);
      ("decoder4", Core.Bench_circuits.decoder 4);
      ("gray8", Core.Bench_circuits.gray_counter 8);
    ]
  in
  (* standalone references: same effective config as the server will use
     (cold cache, jobs=1 per request), one fresh cache dir per design *)
  let reference =
    List.map
      (fun (name, vhdl) ->
        let obs = R.create () in
        let r =
          Core.Flow.run_vhdl
            ~config:
              {
                Core.Flow.default_config with
                Core.Flow.cache_dir = Some (fresh_dir ());
                jobs = Some 1;
              }
            ~obs vhdl
        in
        ( name,
          r.Core.Flow.bitstream.Bitstream.Dagger.bytes,
          E.to_string (R.to_json ~deterministic:true r.Core.Flow.metrics) ))
      designs
  in
  let sock = short_sock () in
  let server =
    Service.Server.create
      (quiet_server_config ~sock ~cache:(fresh_dir ()) ~workers:2
         ~queue_depth:8 ~jobs:2)
  in
  let server_domain = Domain.spawn (fun () -> Service.Server.run server) in
  (* four concurrent clients, one connection and one submission each *)
  let clients =
    List.map
      (fun (name, vhdl) ->
        ( name,
          Domain.spawn (fun () ->
              Service.Client.with_connection sock (fun c ->
                  Service.Client.request c (submit_req vhdl))) ))
      designs
  in
  let responses = List.map (fun (name, d) -> (name, Domain.join d)) clients in
  List.iter
    (fun (name, resp) ->
      Alcotest.(check bool) (name ^ " ok") true (Service.Client.ok resp);
      let ref_bytes, ref_metrics =
        let _, b, m = List.find (fun (n, _, _) -> n = name) reference in
        (b, m)
      in
      let hex =
        match J.get_string (member_exn "bitstream_hex" resp) with
        | Some h -> h
        | None -> Alcotest.fail "bitstream_hex not a string"
      in
      (match P.hex_decode hex with
      | Ok bytes ->
          Alcotest.(check bool)
            (name ^ " bitstream bytes identical to standalone")
            true (bytes = ref_bytes)
      | Error e -> Alcotest.failf "bad hex: %s" e);
      Alcotest.(check string)
        (name ^ " deterministic metrics identical to standalone")
        ref_metrics
        (E.to_string (member_exn "deterministic_metrics" resp));
      (* the embedded result record parses and says ok *)
      let result = member_exn "result" resp in
      Alcotest.(check (option bool)) (name ^ " result.ok") (Some true)
        (Option.bind (J.member "ok" result) J.get_bool))
    responses;
  (* warm resubmission over the shared cache: every stage hits *)
  let warm =
    Service.Client.with_connection sock (fun c ->
        Service.Client.request c (submit_req (snd (List.hd designs))))
  in
  Alcotest.(check bool) "warm ok" true (Service.Client.ok warm);
  let warm_metrics = member_exn "result" warm |> member_exn "metrics" in
  let warm_hits =
    Option.bind (J.member "cache.hit" warm_metrics) (fun e ->
        Option.bind (J.member "value" e) J.get_int)
  in
  Alcotest.(check bool) "warm run hits every stage" true
    (match warm_hits with Some h -> h >= 7 | None -> false);
  (* status and drain via the shutdown verb *)
  Service.Client.with_connection sock (fun c ->
      let st = Service.Client.request c P.Status in
      Alcotest.(check (option int)) "all completed" (Some 5)
        (Option.bind (J.member "completed" st) J.get_int);
      let bye = Service.Client.request c P.Shutdown in
      Alcotest.(check bool) "shutdown acked" true (Service.Client.ok bye));
  Domain.join server_domain;
  Alcotest.(check bool) "socket unlinked after drain" false
    (Sys.file_exists sock)

(* Backpressure and drain-with-queued-work: one worker, queue of one.
   A compiling request holds the worker, a queued request fills the
   queue, the third submission bounces immediately with a structured
   error.  A shutdown issued while work is queued completes that work
   before the server exits. *)
let test_daemon_backpressure_and_drain () =
  let sock = short_sock () in
  let server =
    Service.Server.create
      (quiet_server_config ~sock ~cache:(fresh_dir ()) ~workers:1
         ~queue_depth:1 ~jobs:1)
  in
  let server_domain = Domain.spawn (fun () -> Service.Server.run server) in
  (* two distinct designs so neither compile can answer from the cache *)
  let slow1 = Core.Bench_circuits.multiplier 4 in
  let slow2 = Core.Bench_circuits.alu 8 in
  let submitter = Service.Client.connect sock in
  let poll = Service.Client.connect sock in
  let status name =
    let st = Service.Client.request poll P.Status in
    Option.value (Option.bind (J.member name st) J.get_int) ~default:(-1)
  in
  let wait_for what pred =
    let rec go n =
      if n > 2000 then Alcotest.failf "timeout waiting for %s" what
      else if not (pred ()) then begin
        Unix.sleepf 0.005;
        go (n + 1)
      end
    in
    go 0
  in
  (* first submit occupies the single worker... *)
  Service.Client.send submitter (submit_req slow1);
  wait_for "first compile in flight" (fun () -> status "in_flight" = 1);
  (* ...second fills the queue of one... *)
  Service.Client.send submitter (submit_req slow2);
  wait_for "second compile queued" (fun () -> status "queue_depth" = 1);
  (* the enriched status names the queued request, its 1-based position
     and its age in the queue *)
  (let st = Service.Client.request poll P.Status in
   match J.member "queued" st with
   | Some (E.List [ entry ]) ->
       Alcotest.(check (option int)) "queued id" (Some 2)
         (Option.bind (J.member "id" entry) J.get_int);
       Alcotest.(check (option int)) "queue position" (Some 1)
         (Option.bind (J.member "position" entry) J.get_int);
       Alcotest.(check bool) "age_us non-negative" true
         (match Option.bind (J.member "age_us" entry) J.get_int with
         | Some a -> a >= 0
         | None -> false)
   | Some (E.List l) ->
       Alcotest.failf "expected one queued entry, got %d" (List.length l)
   | _ -> Alcotest.fail "status lacks the queued list");
  (* ...third bounces immediately with a structured error, overtaking
     the in-flight compiles on the wire *)
  Service.Client.send submitter (submit_req slow2);
  let bounce = Service.Client.recv submitter in
  Alcotest.(check bool) "bounced" false (Service.Client.ok bounce);
  Alcotest.(check (option string)) "backpressure code" (Some "backpressure")
    (Option.bind (J.member "code" bounce) J.get_string);
  Alcotest.(check int) "rejection counted" 1 (status "rejected");
  (* drain with work still queued: the shutdown is acknowledged, both
     admitted compiles complete ok, then the server exits *)
  let bye = Service.Client.request poll P.Shutdown in
  Alcotest.(check bool) "shutdown acked" true (Service.Client.ok bye);
  let r1 = Service.Client.recv submitter in
  let r2 = Service.Client.recv submitter in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "admitted compile %d finished ok" (i + 1))
        true (Service.Client.ok r);
      Alcotest.(check (option int))
        (Printf.sprintf "response %d in FIFO order" (i + 1))
        (Some (i + 1))
        (Option.bind (J.member "id" r) J.get_int))
    [ r1; r2 ];
  Service.Client.close submitter;
  Service.Client.close poll;
  Domain.join server_domain;
  Alcotest.(check bool) "socket unlinked after drain" false
    (Sys.file_exists sock)

(* ---------- progress streaming over the wire ---------- *)

let event_name line = Option.bind (J.member "event" line) J.get_string

(* Read response lines until the final (event-less) completion: returns
   (event lines in arrival order, completion). *)
let collect_stream client =
  let rec go events =
    let line = Service.Client.recv client in
    match event_name line with
    | Some _ -> go (line :: events)
    | None -> (List.rev events, line)
  in
  go []

let stage_begins events =
  List.filter_map
    (fun e ->
      if event_name e = Some "stage-begin" then
        Option.bind (J.member "stage" e) J.get_string
      else None)
    events

let check_seqs name events =
  let seqs =
    List.filter_map (fun e -> Option.bind (J.member "seq" e) J.get_int) events
  in
  Alcotest.(check int)
    (name ^ ": every event carries a seq")
    (List.length events) (List.length seqs);
  let rec strictly = function
    | a :: (b :: _ as rest) -> a < b && strictly rest
    | _ -> true
  in
  Alcotest.(check bool) (name ^ ": seq strictly increasing") true
    (strictly seqs)

(* A progress submit streams at least one event per flow stage, with
   strictly increasing sequence numbers, terminated by a "done" event —
   and the final artifacts are byte-identical to a plain submit of the
   same design (served warm from the shared cache, which is exactly the
   determinism the cache keys promise). *)
let test_daemon_streaming () =
  let sock = short_sock () in
  let server =
    Service.Server.create
      (quiet_server_config ~sock ~cache:(fresh_dir ()) ~workers:1
         ~queue_depth:4 ~jobs:1)
  in
  let server_domain = Domain.spawn (fun () -> Service.Server.run server) in
  let vhdl = Core.Bench_circuits.counter 8 in
  let events, completion, streamed_hex =
    Service.Client.with_connection sock (fun c ->
        Service.Client.send c
          (P.Submit { P.default_submit with P.vhdl; progress = true });
        let ack = Service.Client.recv c in
        Alcotest.(check bool) "submit acknowledged" true
          (Service.Client.ok ack);
        Alcotest.(check (option bool)) "ack says accepted" (Some true)
          (Option.bind (J.member "accepted" ack) J.get_bool);
        Alcotest.(check bool) "ack reports the queue position" true
          (J.member "queue_position" ack <> None);
        let events, completion = collect_stream c in
        ( events,
          completion,
          Option.bind (J.member "bitstream_hex" completion) J.get_string ))
  in
  Alcotest.(check bool) "compile ok" true (Service.Client.ok completion);
  let begins = stage_begins events in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Printf.sprintf "stage %s streamed" stage)
        true (List.mem stage begins))
    [
      "vhdl-parser"; "diviner-synth"; "sis-flowmap"; "t-vpack"; "vpr-place";
      "vpr-route"; "sta"; "powermodel"; "dagger";
    ];
  check_seqs "stream" events;
  (match List.rev events with
  | last :: _ ->
      Alcotest.(check (option string)) "stream ends with done" (Some "done")
        (event_name last);
      Alcotest.(check (option bool)) "done carries ok" (Some true)
        (Option.bind (J.member "ok" last) J.get_bool)
  | [] -> Alcotest.fail "no events streamed");
  let id =
    Option.bind (J.member "id" completion) J.get_int |> Option.value ~default:(-1)
  in
  List.iter
    (fun e ->
      Alcotest.(check (option int)) "event routed by request id" (Some id)
        (Option.bind (J.member "id" e) J.get_int))
    events;
  (* plain resubmission: byte-identical bitstream, no event lines *)
  let plain =
    Service.Client.with_connection sock (fun c ->
        Service.Client.request c (submit_req vhdl))
  in
  Alcotest.(check bool) "plain resubmit ok" true (Service.Client.ok plain);
  Alcotest.(check (option string))
    "streamed and plain bitstreams byte-identical" streamed_hex
    (Option.bind (J.member "bitstream_hex" plain) J.get_string);
  Service.Client.with_connection sock (fun c ->
      ignore (Service.Client.request c P.Shutdown));
  Domain.join server_domain

(* The watch verb: a second connection attaches to a queued progress
   submit and sees its event stream; watching a dead or unknown id is a
   structured error. *)
let test_daemon_watch () =
  let sock = short_sock () in
  let server =
    Service.Server.create
      (quiet_server_config ~sock ~cache:(fresh_dir ()) ~workers:1
         ~queue_depth:2 ~jobs:1)
  in
  let server_domain = Domain.spawn (fun () -> Service.Server.run server) in
  let submitter = Service.Client.connect sock in
  let watcher = Service.Client.connect sock in
  (* the first submit holds the single worker, so the progress submit is
     still queued (stream live, job not started) when the watch lands *)
  Service.Client.send submitter (submit_req (Core.Bench_circuits.multiplier 4));
  Service.Client.send submitter
    (P.Submit
       {
         P.default_submit with
         P.vhdl = Core.Bench_circuits.counter 8;
         progress = true;
       });
  let ack = Service.Client.recv submitter in
  Alcotest.(check bool) "progress submit acked" true (Service.Client.ok ack);
  let watched_id =
    Option.bind (J.member "id" ack) J.get_int |> Option.value ~default:(-1)
  in
  let miss = Service.Client.request watcher (P.Watch 9999) in
  Alcotest.(check bool) "unknown id rejected" false (Service.Client.ok miss);
  Alcotest.(check (option string)) "unknown-id code" (Some "unknown-id")
    (Option.bind (J.member "code" miss) J.get_string);
  let watch_ack = Service.Client.request watcher (P.Watch watched_id) in
  Alcotest.(check bool) "watch acked" true (Service.Client.ok watch_ack);
  Alcotest.(check (option string)) "watched while queued" (Some "queued")
    (Option.bind (J.member "state" watch_ack) J.get_string);
  (* the watcher sees the full stream, terminated by done; it gets no
     completion line (that belongs to the owner), so read to done *)
  let rec watch_until_done events =
    let line = Service.Client.recv watcher in
    if event_name line = Some "done" then List.rev (line :: events)
    else watch_until_done (line :: events)
  in
  let events = watch_until_done [] in
  Alcotest.(check bool) "watcher saw stage events" true
    (stage_begins events <> []);
  check_seqs "watched stream" events;
  (* the owner still gets everything: both completions, in order *)
  let r1 = Service.Client.recv submitter in
  let _events2, r2 = collect_stream submitter in
  Alcotest.(check (option int)) "first completion id" (Some 1)
    (Option.bind (J.member "id" r1) J.get_int);
  Alcotest.(check (option int)) "second completion id" (Some watched_id)
    (Option.bind (J.member "id" r2) J.get_int);
  Alcotest.(check bool) "both ok" true
    (Service.Client.ok r1 && Service.Client.ok r2);
  Service.Client.close watcher;
  Service.Client.with_connection sock (fun c ->
      ignore (Service.Client.request c P.Shutdown));
  Service.Client.close submitter;
  Domain.join server_domain

(* Client retry: a connection refused while the daemon is still coming
   up is retried into success, and a backpressure rejection is retried
   until the queue drains — reject first, accept later, same client. *)
let test_client_retry () =
  let sock = short_sock () in
  let cache = fresh_dir () in
  let server_domain =
    Domain.spawn (fun () ->
        Unix.sleepf 0.25;
        Service.Server.run
          (Service.Server.create
             (quiet_server_config ~sock ~cache ~workers:1 ~queue_depth:1
                ~jobs:1)))
  in
  (* nothing is listening yet: a bare connect refuses... *)
  (match Service.Client.connect sock with
  | c ->
      Service.Client.close c;
      Alcotest.fail "connected before the daemon was up"
  | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> ());
  (* ...but the retrying connect lands once the daemon binds *)
  let c = Service.Client.connect_retry ~retries:20 ~wait_ms:20 sock in
  let filler = Service.Client.connect sock in
  let wait_until what pred =
    let rec go n =
      if n > 2000 then Alcotest.failf "timeout waiting for %s" what
      else if not (pred ()) then begin
        Unix.sleepf 0.005;
        go (n + 1)
      end
    in
    go 0
  in
  let status name =
    Service.Client.with_connection sock (fun c ->
        let st = Service.Client.request c P.Status in
        Option.value (Option.bind (J.member name st) J.get_int) ~default:(-1))
  in
  (* fill the worker, then the queue of one (sequenced through status so
     the second submit queues instead of bouncing) *)
  Service.Client.send filler (submit_req (Core.Bench_circuits.multiplier 4));
  wait_until "first compile in flight" (fun () -> status "in_flight" = 1);
  Service.Client.send filler (submit_req (Core.Bench_circuits.alu 8));
  wait_until "queue full" (fun () -> status "queue_depth" = 1);
  (* first attempts bounce with the structured backpressure code; the
     retry loop keeps going and wins a slot when the queue drains *)
  let resp =
    Service.Client.request_retry ~retries:12 ~wait_ms:10 c
      (submit_req (Core.Bench_circuits.counter 8))
  in
  Alcotest.(check bool) "rejected first, accepted later" true
    (Service.Client.ok resp);
  Alcotest.(check bool) "rejections were counted" true (status "rejected" >= 1);
  (* drain: collect the two filler completions, then shut down *)
  ignore (Service.Client.recv filler);
  ignore (Service.Client.recv filler);
  Service.Client.close filler;
  let bye = Service.Client.request c P.Shutdown in
  Alcotest.(check bool) "shutdown acked" true (Service.Client.ok bye);
  Service.Client.close c;
  Domain.join server_domain

let suite =
  [
    ("jsonin roundtrip", `Quick, test_jsonin_roundtrip);
    ("jsonin values", `Quick, test_jsonin_values);
    ("jsonin accessors", `Quick, test_jsonin_accessors);
    ("protocol roundtrip", `Quick, test_protocol_roundtrip);
    ("protocol errors", `Quick, test_protocol_errors);
    ("hex roundtrip", `Quick, test_hex_roundtrip);
    ("manifest resolution", `Quick, test_manifest_resolution);
    ("concurrent stores, one key", `Slow, test_concurrent_store_same_key);
    ("gc scan only", `Quick, test_gc_scan_only);
    ("gc LRU eviction", `Quick, test_gc_lru_eviction);
    ("gc hit refreshes recency", `Quick, test_gc_hit_refreshes_recency);
    ("gc corrupt first", `Quick, test_gc_corrupt_first);
    ("gc removes stale temps", `Quick, test_gc_removes_stale_temps);
    ("daemon end to end", `Slow, test_daemon_e2e);
    ("daemon backpressure and drain", `Slow,
     test_daemon_backpressure_and_drain);
    ("daemon progress streaming", `Slow, test_daemon_streaming);
    ("daemon watch verb", `Slow, test_daemon_watch);
    ("client retry: reject then accept", `Slow, test_client_retry);
  ]
  @ List.map
      (fun t ->
        let name, speed, fn = QCheck_alcotest.to_alcotest t in
        (name, speed, fn))
      [ prop_jsonin_print_stable ]
  @ [ ("jsonin parse_result", `Quick, test_jsonin_parse_result) ]
