(* The compile service: JSON parsing, the wire protocol, manifest
   resolution, concurrent cache writers, size-bounded eviction, and an
   end-to-end daemon exercise (concurrent submissions bit-identical to
   standalone runs, backpressure, graceful drain). *)

module E = Obs.Emit
module R = Obs.Registry
module J = Service.Jsonin
module P = Service.Protocol

let counter obs name =
  match R.find (R.snapshot obs) name with
  | Some (R.Counter n) -> n
  | _ -> 0

let fresh_dir () = Filename.temp_dir "amdrel-service-test" ""

(* ---------- Jsonin: parsing back what Emit produces ---------- *)

let test_jsonin_roundtrip () =
  let samples =
    [
      E.Null;
      E.Bool true;
      E.Int (-42);
      E.Float 1.5;
      E.String "plain";
      E.String "esc \" \\ \n \t \x01 end";
      E.List [ E.Int 1; E.List []; E.Obj [] ];
      E.Obj
        [
          ("a", E.Int 0);
          ("nested", E.Obj [ ("l", E.List [ E.Bool false; E.Null ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = E.to_string v in
      (* parse . print is the identity on printed JSON: this is what
         makes byte-comparing re-rendered responses meaningful *)
      Alcotest.(check string) ("stable: " ^ s) s (E.to_string (J.parse s)))
    samples

let test_jsonin_values () =
  let p = J.parse in
  Alcotest.(check bool) "int" true (p "17" = E.Int 17);
  Alcotest.(check bool) "negative float" true (p "-2.5" = E.Float (-2.5));
  Alcotest.(check bool) "exponent is float" true (p "1e2" = E.Float 100.0);
  Alcotest.(check bool) "unicode escape" true
    (p {|"Aé"|} = E.String "A\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (p {|"😀"|} = E.String "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "whitespace tolerated" true
    (p " { \"k\" : [ 1 , 2 ] } " = E.Obj [ ("k", E.List [ E.Int 1; E.Int 2 ]) ]);
  List.iter
    (fun bad ->
      match J.parse bad with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" bad)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_jsonin_accessors () =
  let o = J.parse {|{"s":"x","b":true,"i":3,"f":2.5,"fi":4.0}|} in
  Alcotest.(check (option string)) "string" (Some "x")
    (Option.bind (J.member "s" o) J.get_string);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (J.member "b" o) J.get_bool);
  Alcotest.(check (option int)) "int" (Some 3)
    (Option.bind (J.member "i" o) J.get_int);
  Alcotest.(check (option int)) "integral float as int" (Some 4)
    (Option.bind (J.member "fi" o) J.get_int);
  Alcotest.(check bool) "float" true
    (Option.bind (J.member "f" o) J.get_float = Some 2.5);
  Alcotest.(check bool) "int as float" true
    (Option.bind (J.member "i" o) J.get_float = Some 3.0);
  Alcotest.(check bool) "absent member" true (J.member "zz" o = None)

(* ---------- the wire protocol ---------- *)

let test_protocol_roundtrip () =
  let roundtrip r =
    match P.request_of_json (J.parse (E.to_string (P.request_to_json r))) with
    | Ok r' -> Alcotest.(check bool) "roundtrips" true (r = r')
    | Error e -> Alcotest.failf "roundtrip failed: %s" e
  in
  roundtrip P.Status;
  roundtrip P.Metrics;
  roundtrip P.Shutdown;
  roundtrip (P.Submit { P.default_submit with P.vhdl = "entity e is end;" });
  roundtrip
    (P.Submit
       {
         P.vhdl = "x";
         seed = 7;
         route_width = Some 10;
         timing_report = true;
         period_ns = Some 12.5;
         place_starts = 3;
       })

let test_protocol_errors () =
  let err s =
    match P.request_of_json (J.parse s) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  err {|{"no":"verb"}|};
  err {|{"verb":"frobnicate"}|};
  err {|{"verb":"submit"}|} (* vhdl required *);
  err {|{"verb":"submit","vhdl":3}|};
  err {|{"verb":"submit","vhdl":"x","seed":"high"}|};
  (* null optional fields read as absent, not as type errors *)
  match P.request_of_json (J.parse {|{"verb":"submit","vhdl":"x","route_width":null}|}) with
  | Ok (P.Submit s) ->
      Alcotest.(check bool) "null optional = default" true (s.P.route_width = None)
  | _ -> Alcotest.fail "null optional rejected"

let test_hex_roundtrip () =
  let all = String.init 256 Char.chr in
  Alcotest.(check (result string string)) "roundtrip" (Ok all)
    (P.hex_decode (P.hex_encode all));
  Alcotest.(check bool) "odd length rejected" true
    (Result.is_error (P.hex_decode "abc"));
  Alcotest.(check bool) "non-hex rejected" true
    (Result.is_error (P.hex_decode "zz"))

(* ---------- manifest resolution (the --batch CWD bug) ---------- *)

let test_manifest_resolution () =
  let dir = fresh_dir () in
  let manifest = Filename.concat dir "designs.txt" in
  let oc = open_out manifest in
  output_string oc "a.vhd\n\n# a comment\n  sub/b.vhd  \n/abs/c.vhd\n";
  close_out oc;
  (* The regression: a same-named file in the CWD must NOT win over the
     manifest directory.  (The old driver checked Sys.file_exists on the
     bare line first, silently compiling whatever the CWD held.) *)
  let decoy = "a.vhd" in
  let had_decoy = Sys.file_exists decoy in
  if not had_decoy then begin
    let oc = open_out decoy in
    output_string oc "-- decoy: must never be picked up\n";
    close_out oc
  end;
  let paths = Service.Manifest.read manifest in
  if not had_decoy then Sys.remove decoy;
  Alcotest.(check (list string)) "resolved against the manifest dir"
    [
      Filename.concat dir "a.vhd";
      Filename.concat dir "sub/b.vhd";
      "/abs/c.vhd";
    ]
    paths;
  Alcotest.(check string) "resolve: relative"
    (Filename.concat dir "x.vhd")
    (Service.Manifest.resolve ~manifest "x.vhd");
  Alcotest.(check string) "resolve: absolute untouched" "/a/b.vhd"
    (Service.Manifest.resolve ~manifest "/a/b.vhd")

(* ---------- concurrent writers on one store key ---------- *)

let test_concurrent_store_same_key () =
  let dir = fresh_dir () in
  let k = Cache.Store.key [ "hammer"; "v1" ] in
  let payload tag j = (tag, j, String.make 2048 (Char.chr (65 + tag))) in
  (* four domains, each with its own handle and registry, all hammering
     the same key with interleaved stores and reads *)
  let domains =
    Array.init 4 (fun tag ->
        Domain.spawn (fun () ->
            let obs = R.create () in
            let s = Cache.Store.open_ ~obs dir in
            for j = 0 to 149 do
              Cache.Store.store s k (payload tag j);
              match (Cache.Store.find s k : (int * int * string) option) with
              | Some (t, _, body) ->
                  (* whatever we read is some writer's complete value,
                     never an interleaving of two *)
                  if String.length body <> 2048 || body.[0] <> Char.chr (65 + t)
                  then failwith "torn read"
              | None -> () (* lost the race to a concurrent rename; fine *)
            done;
            counter obs "cache.corrupt"))
  in
  let corrupt = Array.fold_left (fun n d -> n + Domain.join d) 0 domains in
  Alcotest.(check int) "no read ever saw a torn entry" 0 corrupt;
  (* the survivor is one writer's complete payload *)
  (match (Cache.Store.find (Cache.Store.open_ dir) k : (int * int * string) option) with
  | Some (t, _, body) ->
      Alcotest.(check bool) "final entry complete" true
        (String.length body = 2048 && body.[0] = Char.chr (65 + t))
  | None -> Alcotest.fail "entry missing after the hammer");
  (* every temp file was renamed or belongs to nobody: none left behind *)
  let temps =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun n -> Filename.check_suffix n ".tmp")
  in
  Alcotest.(check (list string)) "no temp debris" [] temps

(* ---------- size-bounded eviction ---------- *)

let stage_mtime path t = Unix.utimes path t t

let seed_entries s n =
  (* n entries with distinct keys and strictly increasing staged mtimes
     (explicit, so filesystem timestamp granularity can't tie) *)
  List.init n (fun i ->
      let k = Cache.Store.key [ "gc"; string_of_int i ] in
      Cache.Store.store s k (i, String.make 1024 'e');
      stage_mtime (Cache.Store.path s k) (1.0e9 +. float_of_int i);
      k)

let test_gc_scan_only () =
  let dir = fresh_dir () in
  let obs = R.create () in
  let s = Cache.Store.open_ ~obs dir in
  let keys = seed_entries s 6 in
  let g = Cache.Store.gc s in
  Alcotest.(check int) "all entries counted" 6 g.Cache.Store.entries;
  Alcotest.(check int) "nothing evicted" 0 g.Cache.Store.evicted;
  Alcotest.(check bool) "resident bytes counted" true
    (g.Cache.Store.resident_bytes > 6 * 1024);
  List.iter
    (fun k ->
      Alcotest.(check bool) "entry survives a scan" true
        (Cache.Store.find s k <> (None : (int * string) option)))
    keys

let test_gc_lru_eviction () =
  let dir = fresh_dir () in
  let obs = R.create () in
  let s = Cache.Store.open_ ~obs dir in
  let keys = seed_entries s 6 in
  let total = (Cache.Store.gc s).Cache.Store.resident_bytes in
  let per_entry = total / 6 in
  (* budget for three entries: the three oldest must go, oldest first *)
  let g = Cache.Store.gc ~max_bytes:(3 * per_entry) s in
  Alcotest.(check int) "three evicted" 3 g.Cache.Store.evicted;
  Alcotest.(check bool) "under budget" true
    (g.Cache.Store.resident_bytes <= 3 * per_entry);
  List.iteri
    (fun i k ->
      let present = Cache.Store.find s k <> (None : (int * string) option) in
      Alcotest.(check bool)
        (Printf.sprintf "entry %d %s" i (if i < 3 then "evicted" else "kept"))
        (i >= 3) present)
    keys;
  Alcotest.(check int) "cache.evict counted" 3 (counter obs "cache.evict")

let test_gc_hit_refreshes_recency () =
  let dir = fresh_dir () in
  let s = Cache.Store.open_ dir in
  let keys = seed_entries s 3 in
  let k0 = List.nth keys 0 and k1 = List.nth keys 1 and k2 = List.nth keys 2 in
  let total = (Cache.Store.gc s).Cache.Store.resident_bytes in
  (* touch the oldest entry through a hit; now entry 1 is the LRU *)
  Alcotest.(check bool) "hit" true
    (Cache.Store.find s k0 <> (None : (int * string) option));
  let g = Cache.Store.gc ~max_bytes:(2 * (total / 3)) s in
  Alcotest.(check int) "one evicted" 1 g.Cache.Store.evicted;
  Alcotest.(check bool) "hit entry survives" true
    (Cache.Store.find s k0 <> (None : (int * string) option));
  Alcotest.(check bool) "un-hit LRU evicted" true
    (Cache.Store.find s k1 = (None : (int * string) option));
  Alcotest.(check bool) "newest survives" true
    (Cache.Store.find s k2 <> (None : (int * string) option))

let test_gc_corrupt_first () =
  let dir = fresh_dir () in
  let s = Cache.Store.open_ dir in
  let keys = seed_entries s 3 in
  (* corrupt the NEWEST entry: under a budget it must still be the first
     to go — a corrupt entry can only ever read as a miss *)
  let newest = List.nth keys 2 in
  let p = Cache.Store.path s newest in
  let ic = open_in_bin p in
  let half = really_input_string ic (in_channel_length ic / 2) in
  close_in ic;
  let oc = open_out_bin p in
  output_string oc half;
  close_out oc;
  stage_mtime p 2.0e9;
  let intact_bytes =
    let st0 = Unix.stat (Cache.Store.path s (List.nth keys 0)) in
    let st1 = Unix.stat (Cache.Store.path s (List.nth keys 1)) in
    st0.Unix.st_size + st1.Unix.st_size
  in
  let g = Cache.Store.gc ~max_bytes:intact_bytes s in
  Alcotest.(check int) "one evicted" 1 g.Cache.Store.evicted;
  Alcotest.(check int) "the corrupt one" 1 g.Cache.Store.evicted_corrupt;
  Alcotest.(check int) "both intact entries kept" 2 g.Cache.Store.entries;
  List.iteri
    (fun i k ->
      Alcotest.(check bool)
        (Printf.sprintf "intact entry %d kept" i)
        true
        (Cache.Store.find s k <> (None : (int * string) option)))
    [ List.nth keys 0; List.nth keys 1 ]

let test_gc_removes_stale_temps () =
  let dir = fresh_dir () in
  let s = Cache.Store.open_ dir in
  ignore (seed_entries s 2);
  let stale = Filename.concat dir ".part-9999-0-0.tmp" in
  let oc = open_out_bin stale in
  output_string oc "crashed writer leftovers";
  close_out oc;
  stage_mtime stale 1.0e9 (* long past the grace period *);
  let fresh = Filename.concat dir ".part-9999-0-1.tmp" in
  let oc = open_out_bin fresh in
  output_string oc "in-flight write";
  close_out oc;
  ignore (Cache.Store.gc s);
  Alcotest.(check bool) "stale temp removed" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh temp untouched" true (Sys.file_exists fresh)

(* ---------- the daemon, end to end ---------- *)

let short_sock () =
  let p = Filename.temp_file "amdreld" ".sock" in
  Sys.remove p;
  p

let quiet_server_config ~sock ~cache ~workers ~queue_depth ~jobs =
  {
    Service.Server.socket_path = sock;
    queue_depth;
    workers;
    jobs;
    cache_max_bytes = None;
    flow = { Core.Flow.default_config with Core.Flow.cache_dir = Some cache };
    log = ignore;
  }

let submit_req vhdl = P.Submit { P.default_submit with P.vhdl }

let member_exn name resp =
  match J.member name resp with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (E.to_string resp)

let test_daemon_e2e () =
  let designs =
    [
      ("counter8", Core.Bench_circuits.counter 8);
      ("parity16", Core.Bench_circuits.parity 16);
      ("decoder4", Core.Bench_circuits.decoder 4);
      ("gray8", Core.Bench_circuits.gray_counter 8);
    ]
  in
  (* standalone references: same effective config as the server will use
     (cold cache, jobs=1 per request), one fresh cache dir per design *)
  let reference =
    List.map
      (fun (name, vhdl) ->
        let obs = R.create () in
        let r =
          Core.Flow.run_vhdl
            ~config:
              {
                Core.Flow.default_config with
                Core.Flow.cache_dir = Some (fresh_dir ());
                jobs = Some 1;
              }
            ~obs vhdl
        in
        ( name,
          r.Core.Flow.bitstream.Bitstream.Dagger.bytes,
          E.to_string (R.to_json ~deterministic:true r.Core.Flow.metrics) ))
      designs
  in
  let sock = short_sock () in
  let server =
    Service.Server.create
      (quiet_server_config ~sock ~cache:(fresh_dir ()) ~workers:2
         ~queue_depth:8 ~jobs:2)
  in
  let server_domain = Domain.spawn (fun () -> Service.Server.run server) in
  (* four concurrent clients, one connection and one submission each *)
  let clients =
    List.map
      (fun (name, vhdl) ->
        ( name,
          Domain.spawn (fun () ->
              Service.Client.with_connection sock (fun c ->
                  Service.Client.request c (submit_req vhdl))) ))
      designs
  in
  let responses = List.map (fun (name, d) -> (name, Domain.join d)) clients in
  List.iter
    (fun (name, resp) ->
      Alcotest.(check bool) (name ^ " ok") true (Service.Client.ok resp);
      let ref_bytes, ref_metrics =
        let _, b, m = List.find (fun (n, _, _) -> n = name) reference in
        (b, m)
      in
      let hex =
        match J.get_string (member_exn "bitstream_hex" resp) with
        | Some h -> h
        | None -> Alcotest.fail "bitstream_hex not a string"
      in
      (match P.hex_decode hex with
      | Ok bytes ->
          Alcotest.(check bool)
            (name ^ " bitstream bytes identical to standalone")
            true (bytes = ref_bytes)
      | Error e -> Alcotest.failf "bad hex: %s" e);
      Alcotest.(check string)
        (name ^ " deterministic metrics identical to standalone")
        ref_metrics
        (E.to_string (member_exn "deterministic_metrics" resp));
      (* the embedded result record parses and says ok *)
      let result = member_exn "result" resp in
      Alcotest.(check (option bool)) (name ^ " result.ok") (Some true)
        (Option.bind (J.member "ok" result) J.get_bool))
    responses;
  (* warm resubmission over the shared cache: every stage hits *)
  let warm =
    Service.Client.with_connection sock (fun c ->
        Service.Client.request c (submit_req (snd (List.hd designs))))
  in
  Alcotest.(check bool) "warm ok" true (Service.Client.ok warm);
  let warm_metrics = member_exn "result" warm |> member_exn "metrics" in
  let warm_hits =
    Option.bind (J.member "cache.hit" warm_metrics) (fun e ->
        Option.bind (J.member "value" e) J.get_int)
  in
  Alcotest.(check bool) "warm run hits every stage" true
    (match warm_hits with Some h -> h >= 7 | None -> false);
  (* status and drain via the shutdown verb *)
  Service.Client.with_connection sock (fun c ->
      let st = Service.Client.request c P.Status in
      Alcotest.(check (option int)) "all completed" (Some 5)
        (Option.bind (J.member "completed" st) J.get_int);
      let bye = Service.Client.request c P.Shutdown in
      Alcotest.(check bool) "shutdown acked" true (Service.Client.ok bye));
  Domain.join server_domain;
  Alcotest.(check bool) "socket unlinked after drain" false
    (Sys.file_exists sock)

(* Backpressure and drain-with-queued-work: one worker, queue of one.
   A compiling request holds the worker, a queued request fills the
   queue, the third submission bounces immediately with a structured
   error.  A shutdown issued while work is queued completes that work
   before the server exits. *)
let test_daemon_backpressure_and_drain () =
  let sock = short_sock () in
  let server =
    Service.Server.create
      (quiet_server_config ~sock ~cache:(fresh_dir ()) ~workers:1
         ~queue_depth:1 ~jobs:1)
  in
  let server_domain = Domain.spawn (fun () -> Service.Server.run server) in
  (* two distinct designs so neither compile can answer from the cache *)
  let slow1 = Core.Bench_circuits.multiplier 4 in
  let slow2 = Core.Bench_circuits.alu 8 in
  let submitter = Service.Client.connect sock in
  let poll = Service.Client.connect sock in
  let status name =
    let st = Service.Client.request poll P.Status in
    Option.value (Option.bind (J.member name st) J.get_int) ~default:(-1)
  in
  let wait_for what pred =
    let rec go n =
      if n > 2000 then Alcotest.failf "timeout waiting for %s" what
      else if not (pred ()) then begin
        Unix.sleepf 0.005;
        go (n + 1)
      end
    in
    go 0
  in
  (* first submit occupies the single worker... *)
  Service.Client.send submitter (submit_req slow1);
  wait_for "first compile in flight" (fun () -> status "in_flight" = 1);
  (* ...second fills the queue of one... *)
  Service.Client.send submitter (submit_req slow2);
  wait_for "second compile queued" (fun () -> status "queue_depth" = 1);
  (* ...third bounces immediately with a structured error, overtaking
     the in-flight compiles on the wire *)
  Service.Client.send submitter (submit_req slow2);
  let bounce = Service.Client.recv submitter in
  Alcotest.(check bool) "bounced" false (Service.Client.ok bounce);
  Alcotest.(check (option string)) "backpressure code" (Some "backpressure")
    (Option.bind (J.member "code" bounce) J.get_string);
  Alcotest.(check int) "rejection counted" 1 (status "rejected");
  (* drain with work still queued: the shutdown is acknowledged, both
     admitted compiles complete ok, then the server exits *)
  let bye = Service.Client.request poll P.Shutdown in
  Alcotest.(check bool) "shutdown acked" true (Service.Client.ok bye);
  let r1 = Service.Client.recv submitter in
  let r2 = Service.Client.recv submitter in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "admitted compile %d finished ok" (i + 1))
        true (Service.Client.ok r);
      Alcotest.(check (option int))
        (Printf.sprintf "response %d in FIFO order" (i + 1))
        (Some (i + 1))
        (Option.bind (J.member "id" r) J.get_int))
    [ r1; r2 ];
  Service.Client.close submitter;
  Service.Client.close poll;
  Domain.join server_domain;
  Alcotest.(check bool) "socket unlinked after drain" false
    (Sys.file_exists sock)

let suite =
  [
    ("jsonin roundtrip", `Quick, test_jsonin_roundtrip);
    ("jsonin values", `Quick, test_jsonin_values);
    ("jsonin accessors", `Quick, test_jsonin_accessors);
    ("protocol roundtrip", `Quick, test_protocol_roundtrip);
    ("protocol errors", `Quick, test_protocol_errors);
    ("hex roundtrip", `Quick, test_hex_roundtrip);
    ("manifest resolution", `Quick, test_manifest_resolution);
    ("concurrent stores, one key", `Slow, test_concurrent_store_same_key);
    ("gc scan only", `Quick, test_gc_scan_only);
    ("gc LRU eviction", `Quick, test_gc_lru_eviction);
    ("gc hit refreshes recency", `Quick, test_gc_hit_refreshes_recency);
    ("gc corrupt first", `Quick, test_gc_corrupt_first);
    ("gc removes stale temps", `Quick, test_gc_removes_stale_temps);
    ("daemon end to end", `Slow, test_daemon_e2e);
    ("daemon backpressure and drain", `Slow,
     test_daemon_backpressure_and_drain);
  ]
