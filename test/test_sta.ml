(* Unified STA engine: propagation invariants, constraint semantics and
   report shape.  The engine is the sole timing oracle (the legacy
   standalone estimators are retired); its absolute output is pinned by
   the golden fixtures in test_golden.ml. *)

let ( => ) name f = Alcotest.test_case name `Quick f

(* VHDL -> placed problem, deterministic seed *)
let placed vhdl =
  let net = Synth.Diviner.synthesize vhdl in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  let r = Place.Anneal.run problem in
  (problem, r.Place.Anneal.placement)

let pre_route_analysis problem placement =
  let graph = Sta.Graph.build problem in
  let provider =
    Sta.Delays.of_placement problem ~coords:(Place.Placement.coords placement)
  in
  Sta.Analysis.run graph provider

let test_criticality_bounds () =
  let problem, placement = placed (Core.Bench_circuits.alu 8) in
  let a = pre_route_analysis problem placement in
  Array.iter
    (Array.iter (fun c ->
         Alcotest.(check bool) "criticality in [0,1]" true
           (c >= 0.0 && c <= 1.0)))
    a.Sta.Analysis.criticality;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "net criticality in [0,1]" true
        (c >= 0.0 && c <= 1.0))
    a.Sta.Analysis.net_criticality;
  (* some net must be fully critical: the worst path has zero slack *)
  Alcotest.(check (float 1e-9)) "worst net criticality is 1" 1.0
    (Array.fold_left Float.max 0.0 a.Sta.Analysis.net_criticality)

(* Increasing the period can only increase each endpoint's slack. *)
let test_slack_monotone () =
  let problem, placement = placed (Core.Bench_circuits.multiplier 4) in
  let graph = Sta.Graph.build problem in
  let provider =
    Sta.Delays.of_placement problem ~coords:(Place.Placement.coords placement)
  in
  let at period =
    Sta.Analysis.run
      ~constraints:{ Sta.Analysis.period = Some period; detff = true }
      graph provider
  in
  let tight = at 2e-9 and loose = at 8e-9 in
  Alcotest.(check bool) "same endpoint count" true
    (Array.length tight.Sta.Analysis.endpoint_arrival
    = Array.length loose.Sta.Analysis.endpoint_arrival);
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool) "slack grows with the period" true
        (Sta.Analysis.endpoint_slack loose i
        >= Sta.Analysis.endpoint_slack tight i))
    tight.Sta.Analysis.endpoint_arrival;
  Alcotest.(check bool) "wns grows with the period" true
    (loose.Sta.Analysis.wns >= tight.Sta.Analysis.wns);
  Alcotest.(check bool) "tns grows with the period" true
    (loose.Sta.Analysis.tns >= tight.Sta.Analysis.tns)

(* DETFF clocking halves the combinational budget: period p with DETFF
   is the same constraint as period p/2 with single-edge capture. *)
let test_detff_halving () =
  let problem, placement = placed (Core.Bench_circuits.accumulator 12) in
  let graph = Sta.Graph.build problem in
  let provider =
    Sta.Delays.of_placement problem ~coords:(Place.Placement.coords placement)
  in
  let run period detff =
    Sta.Analysis.run
      ~constraints:{ Sta.Analysis.period = Some period; detff }
      graph provider
  in
  let det = run 10e-9 true and set = run 5e-9 false in
  Alcotest.(check (float 0.0)) "budget" set.Sta.Analysis.budget
    det.Sta.Analysis.budget;
  Alcotest.(check (float 0.0)) "wns" set.Sta.Analysis.wns
    det.Sta.Analysis.wns;
  Alcotest.(check (float 0.0)) "tns" set.Sta.Analysis.tns
    det.Sta.Analysis.tns

(* Levelized propagation parallelises per level; any jobs count must
   produce the identical analysis. *)
let test_jobs_identical () =
  let problem, placement = placed (Core.Bench_circuits.alu 8) in
  let graph = Sta.Graph.build problem in
  let provider =
    Sta.Delays.of_placement problem ~coords:(Place.Placement.coords placement)
  in
  let a1 = Sta.Analysis.run ~jobs:1 graph provider in
  let a4 = Sta.Analysis.run ~jobs:4 graph provider in
  Alcotest.(check (float 0.0)) "dmax" a1.Sta.Analysis.dmax
    a4.Sta.Analysis.dmax;
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.0)) "arrival" v a4.Sta.Analysis.arrival.(i))
    a1.Sta.Analysis.arrival;
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.0)) "required" v a4.Sta.Analysis.required.(i))
    a1.Sta.Analysis.required

(* Top-K report: deterministic, sorted, consistent with the analysis. *)
let test_report_paths () =
  let problem, placement = placed (Core.Bench_circuits.multiplier 4) in
  let a = pre_route_analysis problem placement in
  let paths = Sta.Report.paths ~k:5 a in
  Alcotest.(check bool) "non-empty" true (paths <> []);
  let first = List.hd paths in
  Alcotest.(check (float 0.0)) "worst path arrival = dmax"
    a.Sta.Analysis.dmax first.Sta.Report.arrival_s;
  let rec desc = function
    | (a : Sta.Report.path) :: (b :: _ as rest) ->
        Alcotest.(check bool) "arrival descending" true
          (a.Sta.Report.arrival_s >= b.Sta.Report.arrival_s);
        desc rest
    | _ -> ()
  in
  desc paths;
  List.iteri
    (fun i (p : Sta.Report.path) ->
      Alcotest.(check int) "rank" (i + 1) p.Sta.Report.rank;
      Alcotest.(check bool) "has hops" true (p.Sta.Report.hops <> []);
      (* hop arrivals must be non-decreasing along the path *)
      let rec hops_ok = function
        | (h1 : Sta.Report.hop) :: (h2 :: _ as rest) ->
            Alcotest.(check bool) "hop arrivals non-decreasing" true
              (h2.Sta.Report.arrival_s >= h1.Sta.Report.arrival_s);
            hops_ok rest
        | _ -> ()
      in
      hops_ok p.Sta.Report.hops)
    paths;
  (* JSON must parse shape-wise: cheap smoke via known substrings *)
  let json = Sta.Report.to_json a paths in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle and m = String.length json in
        let rec scan i =
          i + n <= m && (String.sub json i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) (needle ^ " present") true found)
    [ "\"provider\""; "\"dmax_s\""; "\"paths\""; "\"hops\""; "\"slack_s\"" ]

(* The flow surfaces the unified figures as sta.* counters. *)
let test_flow_counters () =
  let config =
    { Core.Flow.default_config with Core.Flow.timing_driven = true }
  in
  let r = Core.Flow.run_vhdl ~config (Core.Bench_circuits.counter 8) in
  let counter name = List.assoc name r.Core.Flow.times in
  Alcotest.(check bool) "sta.dmax positive" true (counter "sta.dmax" > 0.0);
  Alcotest.(check (float 0.0)) "sta.dmax = post-route analysis dmax"
    r.Core.Flow.sta_post.Sta.Analysis.dmax (counter "sta.dmax");
  Alcotest.(check bool) "sta.wns <= 0" true (counter "sta.wns" <= 0.0);
  Alcotest.(check bool) "sta.tns <= 0" true (counter "sta.tns" <= 0.0);
  (* pre-route estimate uses the same engine over the same graph *)
  Alcotest.(check bool) "pre-route dmax positive" true
    (r.Core.Flow.sta_pre.Sta.Analysis.dmax > 0.0)

(* Scratch reuse must not perturb the annealer: same seed, same result,
   with or without a shared scratch, including consecutive runs on one
   scratch. *)
let test_anneal_scratch () =
  let net = Synth.Diviner.synthesize (Core.Bench_circuits.lfsr 12) in
  let mapped, _ = Techmap.Mapper.map_network ~k:4 ~verify:false net in
  let packing = Pack.Cluster.pack ~n:5 ~i:12 mapped in
  let problem = Place.Problem.build packing in
  let fresh = Place.Anneal.run problem in
  let scratch = Place.Anneal.create_scratch () in
  let a = Place.Anneal.run ~scratch problem in
  let b = Place.Anneal.run ~scratch problem in
  Alcotest.(check (float 0.0)) "cost, fresh vs scratch"
    fresh.Place.Anneal.final_cost a.Place.Anneal.final_cost;
  Alcotest.(check (float 0.0)) "cost, scratch reused"
    fresh.Place.Anneal.final_cost b.Place.Anneal.final_cost;
  Alcotest.(check int) "moves identical" fresh.Place.Anneal.moves
    a.Place.Anneal.moves

(* Incremental update must be bit-identical to a fresh analysis, for any
   jobs count, across a chain of placement perturbations (the annealer's
   usage: many updates between full refreshes, prev consumed each time). *)
let test_incremental_update_exact () =
  let problem, placement = placed (Core.Bench_circuits.alu 8) in
  let graph = Sta.Graph.build problem in
  let grid = problem.Place.Problem.grid in
  let n_blocks = Array.length problem.Place.Problem.blocks in
  let coords_arr =
    Array.init n_blocks (Place.Placement.coords placement)
  in
  let provider () =
    Sta.Delays.of_placement ~producer:graph.Sta.Graph.block_of problem
      ~coords:(fun b -> coords_arr.(b))
  in
  let rng = Util.Prng.create 77 in
  let chain1 = ref (Sta.Analysis.run ~jobs:1 graph (provider ())) in
  let chain4 = ref (Sta.Analysis.run ~jobs:4 graph (provider ())) in
  for round = 1 to 6 do
    (* perturb 1-3 blocks (the STA does not care about overlap) *)
    let moved =
      List.init
        (1 + Util.Prng.int rng 3)
        (fun _ ->
          let b = Util.Prng.int rng n_blocks in
          coords_arr.(b) <-
            ( 1 + Util.Prng.int rng grid.Fpga_arch.Grid.nx,
              1 + Util.Prng.int rng grid.Fpga_arch.Grid.ny );
          b)
      |> List.sort_uniq compare
    in
    let p = provider () in
    chain1 := Sta.Analysis.update ~jobs:1 ~changed_blocks:moved !chain1 p;
    chain4 := Sta.Analysis.update ~jobs:4 ~changed_blocks:moved !chain4 p;
    let fresh = Sta.Analysis.run graph p in
    List.iter
      (fun (label, (a : Sta.Analysis.t)) ->
        let check name b =
          Alcotest.(check bool)
            (Printf.sprintf "round %d %s %s bit-identical" round label name)
            true b
        in
        check "dmax" (a.Sta.Analysis.dmax = fresh.Sta.Analysis.dmax);
        check "arrival" (a.Sta.Analysis.arrival = fresh.Sta.Analysis.arrival);
        check "downstream"
          (a.Sta.Analysis.downstream = fresh.Sta.Analysis.downstream);
        check "required" (a.Sta.Analysis.required = fresh.Sta.Analysis.required);
        check "endpoint arrivals"
          (a.Sta.Analysis.endpoint_arrival
          = fresh.Sta.Analysis.endpoint_arrival);
        check "criticality"
          (a.Sta.Analysis.criticality = fresh.Sta.Analysis.criticality);
        check "net criticality"
          (a.Sta.Analysis.net_criticality = fresh.Sta.Analysis.net_criticality);
        check "wns/tns"
          (a.Sta.Analysis.wns = fresh.Sta.Analysis.wns
          && a.Sta.Analysis.tns = fresh.Sta.Analysis.tns))
      [ ("jobs=1", !chain1); ("jobs=4", !chain4) ]
  done

(* The incremental counters must surface through the registry. *)
let test_incremental_counters () =
  let problem, placement = placed (Core.Bench_circuits.counter 8) in
  let graph = Sta.Graph.build problem in
  let provider =
    Sta.Delays.of_placement problem ~coords:(Place.Placement.coords placement)
  in
  let obs = Obs.Registry.create () in
  let a = Sta.Analysis.run graph provider in
  let a = Sta.Analysis.update ~obs ~changed_blocks:[ 0; 1 ] a provider in
  ignore (Sta.Analysis.update ~obs ~changed_blocks:[ 2 ] a provider);
  let v name = List.assoc name (Obs.Registry.to_assoc (Obs.Registry.snapshot obs)) in
  Alcotest.(check (float 0.0)) "sta.incr.cones counts moved blocks" 3.0
    (v "sta.incr.cones");
  Alcotest.(check bool) "sta.incr.nodes-touched recorded" true
    (v "sta.incr.nodes-touched" >= 0.0)

let suite =
  [
    "criticality bounds" => test_criticality_bounds;
    "incremental update bit-exact" => test_incremental_update_exact;
    "incremental counters" => test_incremental_counters;
    "slack monotone in period" => test_slack_monotone;
    "detff halves the budget" => test_detff_halving;
    "jobs-identical propagation" => test_jobs_identical;
    "top-k path report" => test_report_paths;
    "flow sta counters" => test_flow_counters;
    "annealer scratch reuse" => test_anneal_scratch;
  ]
