(* Tests for the shared infrastructure library. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Lu ---------- *)

let test_lu_identity () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let x = Util.Lu.solve_system a [| 3.0; -4.0 |] in
  check_float "x0" 3.0 x.(0);
  check_float "x1" (-4.0) x.(1)

let test_lu_known_system () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Util.Lu.solve_system a [| 5.0; 10.0 |] in
  check_float "x" 1.0 x.(0);
  check_float "y" 3.0 x.(1)

let test_lu_pivoting () =
  (* zero on the leading diagonal forces a row swap *)
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Util.Lu.solve_system a [| 7.0; 9.0 |] in
  check_float "x" 9.0 x.(0);
  check_float "y" 7.0 x.(1)

let test_lu_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Util.Lu.Singular 1) (fun () ->
      ignore (Util.Lu.solve_system a [| 1.0; 2.0 |]))

let prop_lu_random_solve =
  QCheck.Test.make ~count:100 ~name:"Lu: A * solve(A, b) = b"
    QCheck.(pair (int_bound 1000) (int_range 1 8))
    (fun (seed, n) ->
      let rng = Util.Prng.create (seed + 1) in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                Util.Prng.float_range rng (-1.0) 1.0
                +. if i = j then 4.0 else 0.0))
      in
      let b = Array.init n (fun _ -> Util.Prng.float_range rng (-10.0) 10.0) in
      let x = Util.Lu.solve_system a b in
      let residual = ref 0.0 in
      for i = 0 to n - 1 do
        let s = ref 0.0 in
        for j = 0 to n - 1 do
          s := !s +. (a.(i).(j) *. x.(j))
        done;
        residual := Float.max !residual (Float.abs (!s -. b.(i)))
      done;
      !residual < 1e-8)

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Prng.int a 1000) (Util.Prng.int b 1000)
  done

let test_prng_bounds () =
  let rng = Util.Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Util.Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let f = Util.Prng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_shuffle_is_permutation () =
  let rng = Util.Prng.create 3 in
  let a = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ---------- Pqueue ---------- *)

let test_pqueue_ordering () =
  let q = Util.Pqueue.create () in
  List.iter (fun p -> Util.Pqueue.push q p (int_of_float p))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> snd (Util.Pqueue.pop q)) in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 4; 5 ] order

let test_pqueue_empty () =
  let q = Util.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Util.Pqueue.is_empty q);
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Util.Pqueue.pop q))

let prop_pqueue_sorts =
  QCheck.Test.make ~count:100 ~name:"Pqueue: pops come out sorted"
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun floats ->
      let q = Util.Pqueue.create () in
      List.iteri (fun i p -> Util.Pqueue.push q p i) floats;
      let rec drain acc =
        if Util.Pqueue.is_empty q then List.rev acc
        else drain (fst (Util.Pqueue.pop q) :: acc)
      in
      let out = drain [] in
      out = List.sort compare floats)

(* Interleaved push/pop/peek against a sorted-multiset model: pops come
   out in priority order with their own payloads, peek agrees with the
   next pop, length tracks, and popping empty raises.  (Payload =
   priority, so payload/priority pairing is checked too.) *)
let prop_pqueue_interleaved =
  QCheck.Test.make ~count:200 ~name:"Pqueue: interleaved ops match model"
    QCheck.(list (option (float_bound_exclusive 1000.0)))
    (fun ops ->
      let q = Util.Pqueue.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some p ->
              Util.Pqueue.push q p p;
              model := List.sort compare (p :: !model);
              Util.Pqueue.length q = List.length !model
              && fst (Util.Pqueue.peek q) = List.hd !model
          | None -> (
              match !model with
              | [] -> (
                  match Util.Pqueue.pop q with
                  | _ -> false
                  | exception Not_found -> Util.Pqueue.is_empty q)
              | m :: rest ->
                  let p, x = Util.Pqueue.pop q in
                  model := rest;
                  p = m && x = m))
        ops)

(* [clear] really empties: the queue drains as if freshly created. *)
let prop_pqueue_clear =
  QCheck.Test.make ~count:100 ~name:"Pqueue: clear then reuse is fresh"
    QCheck.(pair (list (float_bound_exclusive 100.0))
              (list (float_bound_exclusive 100.0)))
    (fun (first, second) ->
      let q = Util.Pqueue.create () in
      List.iter (fun p -> Util.Pqueue.push q p p) first;
      Util.Pqueue.clear q;
      Util.Pqueue.is_empty q
      && begin
           List.iter (fun p -> Util.Pqueue.push q p p) second;
           let rec drain acc =
             if Util.Pqueue.is_empty q then List.rev acc
             else drain (fst (Util.Pqueue.pop q) :: acc)
           in
           drain [] = List.sort compare second
         end)

(* ---------- Union_find ---------- *)

let test_union_find () =
  let uf = Util.Union_find.create 10 in
  Alcotest.(check int) "initial components" 10 (Util.Union_find.components uf);
  Util.Union_find.union uf 0 1;
  Util.Union_find.union uf 1 2;
  Alcotest.(check bool) "0~2" true (Util.Union_find.same uf 0 2);
  Alcotest.(check bool) "0!~3" false (Util.Union_find.same uf 0 3);
  Alcotest.(check int) "components" 8 (Util.Union_find.components uf)

(* ---------- Stats ---------- *)

let test_stats () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Util.Stats.mean a);
  check_float "median" 2.5 (Util.Stats.median a);
  let lo, hi = Util.Stats.min_max a in
  check_float "min" 1.0 lo;
  check_float "max" 4.0 hi;
  check_float "geomean of 2,8" 4.0 (Util.Stats.geomean [| 2.0; 8.0 |]);
  check_float "variance" (5.0 /. 3.0) (Util.Stats.variance a)

(* ---------- Tablefmt ---------- *)

let test_tablefmt_alignment () =
  let s = Util.Tablefmt.render [ "name"; "v" ] [ [ "a"; "10" ]; [ "bb"; "5" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "rows" 4 (List.length lines);
  (* numeric column right-aligned: the 5 sits under the 0 of 10 *)
  Alcotest.(check bool) "right aligned" true
    (match lines with
    | [ _; _; r1; r2 ] ->
        String.length r1 = String.length r2
    | _ -> false)

(* ---------- Parallel ---------- *)

let test_parallel_map_ordering () =
  let xs = Array.init 100 Fun.id in
  let expect = Array.map (fun i -> i * i) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Util.Parallel.map ~jobs (fun i -> i * i) xs))
    [ 1; 2; 4; 7 ]

let test_parallel_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||]
    (Util.Parallel.map ~jobs:4 (fun i -> i) [||]);
  Alcotest.(check (array int)) "singleton" [| 9 |]
    (Util.Parallel.map ~jobs:4 (fun i -> i * 9) [| 1 |])

exception Boom of int

let test_parallel_exception_first_index () =
  (* several tasks fail; the lowest index must be the one re-raised,
     exactly as a sequential loop would surface it *)
  let raised =
    match
      Util.Parallel.map ~jobs:4
        (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
        (Array.init 32 Fun.id)
    with
    | _ -> None
    | exception Boom i -> Some i
  in
  Alcotest.(check (option int)) "lowest failing index" (Some 1) raised

let test_parallel_map_reduce () =
  let xs = Array.init 50 (fun i -> i + 1) in
  let total =
    Util.Parallel.map_reduce ~jobs:4 ~map:(fun i -> i * i) ~reduce:( + )
      ~init:0 xs
  in
  Alcotest.(check int) "sum of squares" (50 * 51 * 101 / 6) total;
  (* the fold is sequential in input order, so a non-commutative reduce
     is safe *)
  let cat =
    Util.Parallel.map_reduce ~jobs:3 ~map:string_of_int ~reduce:( ^ ) ~init:""
      (Array.init 12 Fun.id)
  in
  Alcotest.(check string) "ordered fold" "01234567891011" cat

let test_parallel_nested_sequential () =
  (* a map inside a pool worker must not spawn further domains *)
  let inner =
    Util.Parallel.map ~jobs:2
      (fun _ -> Util.Parallel.resolve_jobs ~jobs:8 ())
      (Array.init 4 Fun.id)
  in
  Array.iter (fun j -> Alcotest.(check int) "nested resolves to 1" 1 j) inner;
  Alcotest.(check bool) "caller left worker mode" false
    (Util.Parallel.in_worker ())

let prop_parallel_matches_sequential =
  QCheck.Test.make ~count:50 ~name:"Parallel.map = Array.map for any jobs"
    QCheck.(pair (int_range 1 8) (int_range 0 40))
    (fun (jobs, n) ->
      let xs = Array.init n (fun i -> i * 7 mod 13) in
      Util.Parallel.map ~jobs (fun x -> (x * x) + 1) xs
      = Array.map (fun x -> (x * x) + 1) xs)

let suite =
  [
    ("lu identity", `Quick, test_lu_identity);
    ("lu known system", `Quick, test_lu_known_system);
    ("lu pivoting", `Quick, test_lu_pivoting);
    ("lu singular", `Quick, test_lu_singular);
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng shuffle permutation", `Quick, test_prng_shuffle_is_permutation);
    ("pqueue ordering", `Quick, test_pqueue_ordering);
    ("pqueue empty", `Quick, test_pqueue_empty);
    ("union find", `Quick, test_union_find);
    ("stats", `Quick, test_stats);
    ("tablefmt alignment", `Quick, test_tablefmt_alignment);
    ("parallel map ordering", `Quick, test_parallel_map_ordering);
    ("parallel empty/singleton", `Quick, test_parallel_empty_and_singleton);
    ("parallel exception propagation", `Quick,
     test_parallel_exception_first_index);
    ("parallel map_reduce", `Quick, test_parallel_map_reduce);
    ("parallel nested sequential", `Quick, test_parallel_nested_sequential);
    QCheck_alcotest.to_alcotest prop_parallel_matches_sequential;
    QCheck_alcotest.to_alcotest prop_lu_random_solve;
    QCheck_alcotest.to_alcotest prop_pqueue_sorts;
    QCheck_alcotest.to_alcotest prop_pqueue_interleaved;
    QCheck_alcotest.to_alcotest prop_pqueue_clear;
  ]
